"""§3-§4: the dynamic algorithm under shifting demand (Fig. 4).

Paper reference: with a frozen neighbour table B visits D, A, C even
though A's demand collapsed and C's exploded (A 2 -> 0, C 0 -> 9 at
t=2); re-reading demand before each selection yields B-D, B-C', B-A'
("if B followed the static algorithm it would not contribute to
carrying consistency to the zones with greatest demand").
"""

from __future__ import annotations

from repro.experiments.figures import table2_dynamic
from repro.experiments.tables import format_table

REPS = 60


def test_table2_dynamic_demand(benchmark, report):
    result = benchmark.pedantic(
        lambda: table2_dynamic(reps=REPS, seed=1), rounds=1, iterations=1
    )

    sequence_table = format_table(
        ["beliefs", "t=1", "t=2", "t=3"],
        result.sequence_rows(),
        title="§4 — B's partner per session (paper: B-D, B-C', B-A')",
    )
    sim_table = format_table(
        ["variant", "t(C')", "t(all)"] + [f"sat@{i}" for i in range(1, 7)],
        result.rows(),
        title=f"chain scenario, reps={REPS} — C turns hot mid-propagation",
    )
    report.add("table2", sequence_table + "\n\n" + sim_table)

    # The literal §4 table.
    assert result.sequences["static"] == ["D", "A", "C"]
    assert result.sequences["dynamic"] == ["D", "C'", "A'"]
    # Quantitative consequence: the dynamic variants carry consistency
    # to the newly-hot replica sooner than the static table.
    static = result.mean_time_to_c["static-table"]
    assert result.mean_time_to_c["dynamic-oracle"] < static
    assert result.mean_time_to_c["dynamic-advertised"] < static
    # And serve more requests with fresh content mid-run.
    assert (
        result.satisfied_at["dynamic-oracle"][2]
        > result.satisfied_at["static-table"][2]
    )
