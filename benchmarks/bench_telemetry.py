"""Telemetry memory/latency bench: O(1) streaming status vs list baseline.

``repro campaign status`` must answer from a checkpoint without
materialising trials. This bench generates synthetic JSON-lines
checkpoints at 10^3 / 10^4 / 10^5 trials and measures, at each rung,
the peak traced allocation and wall latency of

* :func:`repro.experiments.sink.stream_status` — the streaming path
  (one line parsed, counted, dropped), and
* :func:`repro.experiments.sink.sink_status` — the list baseline,
  which loads every trial into a :class:`JsonLinesSink` dict first.

Gates: the streaming peak stays flat across two orders of magnitude of
trial count (the O(1) claim), the baseline's grows with n, and both
paths agree on the counts. Results go to ``BENCH_telemetry.json`` at
the repo root so ``bench_trend.py`` tracks the trajectory across PRs.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from pathlib import Path
from typing import Dict

from repro.experiments.sink import sink_status, stream_status
from repro.experiments.tables import format_table

RUNGS = (1_000, 10_000, 100_000)
VARIANTS = ("fast", "weak")
#: Streaming peak may grow by at most this factor from 10^3 to 10^5
#: trials (sketchless status barely allocates; the slack covers
#: allocator jitter, not data structures).
FLAT_FACTOR = 3.0
#: Absolute floor for the flatness ratio: below this many KiB the
#: comparison measures allocator noise, not the algorithm.
FLAT_FLOOR_KB = 256.0
#: At the top rung the list baseline must hold at least this many times
#: the streaming path's peak — the O(n) vs O(1) separation itself.
SEPARATION_FACTOR = 5.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"


def _write_synthetic_checkpoint(path: Path, trials: int) -> None:
    """A checkpoint shaped exactly like a real campaign's, n rows."""
    state = 0x9E3779B9
    with path.open("w", encoding="utf-8") as fh:
        fh.write(
            json.dumps(
                {"kind": "header", "campaign": "synthetic", "plans": {"bench": trials}},
                sort_keys=True,
            )
            + "\n"
        )
        for i in range(trials):
            state = (state * 6364136223846793005 + 1442695040888963407) % 2**64
            spread = (state >> 11) % 10_000 / 1_000.0  # 0.0 .. 9.999
            variant = VARIANTS[i % len(VARIANTS)]
            trial = {
                "rep": i,
                "origin": i % 97,
                "time_all": 4.0 + spread,
                "time_top": 1.0 + spread / 4.0,
                "time_top1": 0.5 + spread / 8.0,
                "mean_time": 2.0 + spread / 2.0,
                "diameter": 11,
                "messages": 1000 + i % 311,
                "bytes_sent": 50_000 + i % 7001,
                "n_nodes": 100,
                "time_post_heal": None,
                "time_top_shocked": None,
                "satisfied_area": None,
                "replicas_spawned": 0,
                "replicas_retired": 0,
                "replicas_peak": 0,
                "placement_bytes": 0,
            }
            fh.write(
                json.dumps(
                    {
                        "kind": "trial",
                        "key": f"bench::rep={i}/faults=none/variant={variant}",
                        "trial": trial,
                    },
                    sort_keys=True,
                )
                + "\n"
            )


def _measure(fn) -> Dict[str, float]:
    """Peak traced KiB and wall ms of one status call."""
    tracemalloc.start()
    started = time.perf_counter()
    result = fn()
    elapsed_ms = 1000 * (time.perf_counter() - started)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {"peak_kb": peak / 1024.0, "ms": elapsed_ms, "result": result}


def _bench_rung(path: Path, trials: int) -> Dict[str, object]:
    _write_synthetic_checkpoint(path, trials)
    streaming = _measure(lambda: stream_status(path))
    baseline = _measure(lambda: sink_status(path))
    status = streaming["result"]
    _, counts = baseline["result"]
    assert status.trials == trials, (trials, status.trials)
    assert status.torn_lines == 0
    assert counts["bench"] == trials, counts
    return {
        "trials": trials,
        "streaming_peak_kb": streaming["peak_kb"],
        "streaming_status_ms": streaming["ms"],
        "baseline_peak_kb": baseline["peak_kb"],
        "baseline_status_ms": baseline["ms"],
    }


def test_telemetry_status_memory(benchmark, report, tmp_path):
    results: Dict[int, Dict[str, object]] = {}

    def run_all() -> None:
        for trials in RUNGS:
            results[trials] = _bench_rung(tmp_path / f"cp_{trials}.jsonl", trials)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    smallest, largest = results[RUNGS[0]], results[RUNGS[-1]]
    # The O(1) gate: two orders of magnitude more trials, flat peak.
    flat_base = max(float(smallest["streaming_peak_kb"]), FLAT_FLOOR_KB)
    assert largest["streaming_peak_kb"] <= FLAT_FACTOR * flat_base, results
    # The separation gate: the list baseline pays O(n) where the
    # streaming path does not.
    assert (
        largest["baseline_peak_kb"]
        >= SEPARATION_FACTOR * largest["streaming_peak_kb"]
    ), results

    payload = {
        "experiment": "telemetry-status",
        "rungs": list(RUNGS),
        "flat_factor": FLAT_FACTOR,
        "separation_factor": SEPARATION_FACTOR,
        "results": {str(trials): results[trials] for trials in RUNGS},
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    rows = [
        (
            f"{trials:,}",
            f"{results[trials]['streaming_peak_kb']:.0f}",
            f"{results[trials]['streaming_status_ms']:.1f}",
            f"{results[trials]['baseline_peak_kb']:.0f}",
            f"{results[trials]['baseline_status_ms']:.1f}",
        )
        for trials in RUNGS
    ]
    report.add(
        "telemetry — campaign status peak memory (KiB) and latency (ms)",
        format_table(
            ["trials", "stream KiB", "stream ms", "list KiB", "list ms"],
            rows,
            title="stream_status (O(1)) vs sink_status (materialises trials)",
        ),
    )
