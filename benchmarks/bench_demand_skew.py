"""Demand-skew sensitivity: the paper's enabling assumption, swept.

§8: "The worst case would be when all the replicas possess the same
demand; in such a situation the algorithm behaves like a normal weak
consistency algorithm." This benchmark sweeps demand non-uniformity
from perfectly flat to heavily skewed and measures (a) convergence and
(b) the fraction of replicas served by the fast-update push.

It also demonstrates a structural property of the algorithm: it is
*ordinal* in demand — only the demand ranking enters the protocol, so
two Zipf fields with different exponents but the same rank permutation
produce byte-identical behaviour.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import skew_experiment
from repro.experiments.tables import format_table

REPS = 15


def test_demand_skew_sensitivity(benchmark, report):
    result = benchmark.pedantic(
        lambda: skew_experiment(reps=REPS, seed=1), rounds=1, iterations=1
    )

    table = format_table(
        ["demand", "weak (all)", "fast (all)", "fast (hottest)", "push deliveries"],
        result.rows(),
        title=f"§8 — demand-skew sweep (reps={REPS})",
    )
    report.add("skew", table)

    rows = result.rows_by_skew
    # Flat demand: the push never fires (§8's worst case). Fast still
    # edges out weak because demand-ordered selection degenerates to a
    # deterministic cycle, which covers neighbours faster than random
    # choice — a Golding-era observation, not a demand effect.
    assert rows["flat"]["push_fraction"] == 0.0
    # Any skew activates the push on a meaningful share of deliveries.
    for skew in ("uniform", "zipf/0.5", "zipf/1.5"):
        assert rows[skew]["push_fraction"] > 0.10, skew
        # And the hottest replica is served much sooner than under flat.
        assert rows[skew]["fast_top"] < rows["flat"]["fast_top"], skew
    # Ordinal invariance: equal rank permutations => equal behaviour,
    # regardless of how skewed the demand *values* are.
    assert rows["zipf/0.5"]["fast_all"] == pytest.approx(
        rows["zipf/1.5"]["fast_all"], rel=1e-9
    )
    assert rows["zipf/0.5"]["fast_top"] == pytest.approx(
        rows["zipf/1.5"]["fast_top"], rel=1e-9
    )
