"""§2 table: the worst/best session orders for the five-replica example.

Paper reference: worst case B-C, B-A, B-E, B-D; best case B-D, B-E,
B-A, B-C. The benchmark enumerates all 4! visit orders and checks the
paper's two extreme cases are the true extremes.
"""

from __future__ import annotations

from repro.experiments.figures import table1_orderings
from repro.experiments.tables import format_kv, format_table


def test_table1_ordering_cases(benchmark, report):
    result = benchmark.pedantic(table1_orderings, rounds=1, iterations=1)

    table = format_table(
        ["order", "t=1", "t=2", "t=3", "t=4", "area"],
        result.rows(),
        title="§2 — cumulative satisfied requests for every visit order",
    )
    notes = format_kv(
        "extremes",
        [
            ("worst (paper: C,A,E,D)", ",".join(result.worst)),
            ("best  (paper: D,E,A,C)", ",".join(result.best)),
        ],
    )
    report.add("table1", table + "\n" + notes)

    assert result.worst == ("C", "A", "E", "D")
    assert result.best == ("D", "E", "A", "C")
    assert len(result.orders) == 24
    # All orders end at the total demand of 28 requests/unit.
    assert all(series[-1] == 28.0 for _, series, _ in result.orders)
