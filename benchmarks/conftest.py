"""Shared infrastructure for the benchmark suite.

Every benchmark regenerates one table/figure of the paper (see the
per-experiment index in DESIGN.md) and registers a paper-vs-measured
report through the ``report`` fixture; all reports are printed in the
terminal summary at the end of the run, so
``pytest benchmarks/ --benchmark-only`` shows both the timing table and
the reproduced rows.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest


class ReportCollector:
    """Accumulates named text sections for the terminal summary."""

    def __init__(self) -> None:
        self.sections: List[Tuple[str, str]] = []

    def add(self, title: str, text: str) -> None:
        self.sections.append((title, text))


_collector = ReportCollector()


@pytest.fixture(scope="session")
def report() -> ReportCollector:
    """Session-wide collector of paper-vs-measured report sections."""
    return _collector


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    if not _collector.sections:
        return
    terminalreporter.write_sep("=", "paper-vs-measured reports")
    for title, text in _collector.sections:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", title)
        for line in text.splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
