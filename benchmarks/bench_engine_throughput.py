"""Infrastructure micro-benchmarks: engine and end-to-end sim throughput.

Not a paper artefact — these keep the simulator honest (the repro band
notes throughput is the risk for a Python reproduction) and catch
performance regressions in the event core that every experiment sits on.
"""

from __future__ import annotations

from repro.core.system import ReplicationSystem
from repro.core.variants import fast_consistency
from repro.demand.static import UniformRandomDemand
from repro.sim.engine import Simulator
from repro.topology.brite import internet_like


def pump_events(n: int) -> int:
    sim = Simulator(seed=1)

    def reschedule():
        if sim.events_executed < n:
            sim.schedule(0.001, reschedule)

    for _ in range(100):
        sim.schedule(0.001, reschedule)
    sim.run(max_events=n)
    return sim.events_executed


def test_engine_event_throughput(benchmark):
    executed = benchmark(pump_events, 20_000)
    assert executed == 20_000


def run_fig5_style_trial() -> float:
    system = ReplicationSystem(
        topology=internet_like(50, seed=3),
        demand=UniformRandomDemand(seed=3),
        config=fast_consistency(),
        seed=3,
    )
    system.start()
    update = system.inject_write(0)
    done = system.run_until_replicated(update.uid, max_time=80.0)
    assert done is not None
    return done


def test_end_to_end_trial_throughput(benchmark):
    done = benchmark(run_fig5_style_trial)
    assert done > 0.0
