"""§6 extension: islands of high demand bridged through elected leaders.

Paper reference (§6, ongoing work): clusters of highly consistent
replicas ("islands") can be surrounded by low-demand regions; a leader
election per island plus an island interconnection network "will help to
ensure that all updates will reach very fast to any region with high
demand".
"""

from __future__ import annotations

from repro.experiments.figures import islands_experiment
from repro.experiments.tables import format_table

REPS = 10


def test_islands_leader_bridges(benchmark, report):
    result = benchmark.pedantic(
        lambda: islands_experiment(reps=REPS, seed=1), rounds=1, iterations=1
    )

    table = format_table(
        ["variant", "far leader", "far island (mean member)", "all replicas"],
        result.rows(),
        title=f"§6 — two-valley grid, {result.islands_detected} islands, reps={REPS}",
    )
    report.add("islands", table)

    assert result.islands_detected == 2
    plain_leader = result.mean_far_leader["fast"]
    bridged_leader = result.mean_far_leader["fast+bridges"]
    # The far island's leader hears about the update at overlay speed.
    assert bridged_leader < plain_leader
    assert bridged_leader < 1.0
    # The whole far island benefits.
    assert (
        result.mean_far_island["fast+bridges"] < result.mean_far_island["fast"]
    )
    # Bridging never hurts global convergence.
    assert result.mean_all["fast+bridges"] <= result.mean_all["fast"] * 1.1
