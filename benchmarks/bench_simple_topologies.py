"""§5: "Similar results ... obtained with simpler uniform topologies
(linear, ring, grid), with different number of nodes."

The benchmark runs weak vs fast on a line, a ring and a grid and checks
the same qualitative picture as Figs. 5-6: fast consistency reaches the
high-demand replica much sooner and does not lose on global convergence.
"""

from __future__ import annotations

from repro.experiments.figures import uniform_topologies
from repro.experiments.tables import format_table

REPS = 12


def test_simple_uniform_topologies(benchmark, report):
    result = benchmark.pedantic(
        lambda: uniform_topologies(reps=REPS, seed=1), rounds=1, iterations=1
    )

    table = format_table(
        ["topology", "n", "diameter", "weak mean", "fast mean", "fast top mean"],
        result.rows(),
        title=f"§5 — linear / ring / grid (reps={REPS})",
    )
    report.add("uniform", table)

    for name, data in result.rows_by_name.items():
        # Fast never loses globally (small tolerance for noise)...
        assert data["fast_mean"] <= data["weak_mean"] * 1.05, name
        # ...and wins clearly on the high-demand replica.
        assert data["fast_top_mean"] < 0.7 * data["weak_mean"], name
    # Sessions scale with diameter across these shapes: the line (largest
    # diameter) needs the most sessions, the grid the fewest.
    weak_means = {n: d["weak_mean"] for n, d in result.rows_by_name.items()}
    assert weak_means["line-24"] > weak_means["grid-5x5"]
