"""Demand-driven placement vs static replicas: the closed loop pays off.

The paper argues replicas belong where demand is; the placement
subsystem (``repro.placement``) closes that loop by spawning and
retiring copies from live demand observations. This benchmark runs the
placement-swept declarative pipeline on two scenarios:

* **flash-crowd / grid** — uniform background demand with a 12x spike
  on ~1/12 of the sites during [10, 45): the canonical case where a
  static deployment saturates while the autoscaler adds serving
  capacity exactly where (and while) it is needed;
* **flash-crowd / cdn** — the same demand on a two-tier AS/router
  hierarchy, where control traffic pays multi-hop overlay delays.

Every placement policy runs against ``static`` placement on identical
seeds, so the Fig. 3-style capacity-aware satisfaction areas are
paired. Results go to ``BENCH_placement.json`` at the repo root
(tracked by ``bench_trend.py`` like every other BENCH artifact).

The quantitative claims under test:

* on flash-crowd scenarios the threshold autoscaler's mean satisfied
  area strictly beats static placement's (the whole point of the
  subsystem);
* the control loop's byte overhead stays a small fraction of total
  traffic;
* a placement sweep is bit-identical between the serial and
  process-pool backends.

Set ``BENCH_PLACEMENT_QUICK=1`` (the CI placement-smoke job does) to
shrink repetitions for a fast signal.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.backends import ProcessPoolBackend, SerialBackend
from repro.experiments.plan import ExperimentPlan

QUICK = os.environ.get("BENCH_PLACEMENT_QUICK", "") not in ("", "0")

REPS = 2 if QUICK else 5
SEED = 23
MAX_TIME = 80.0
PLACEMENTS = ("static", "threshold", "top-share", "efficiency")
SCENARIOS = (
    ("grid", 16),
    ("cdn", 24),
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_placement.json"


def _plan(topology: str, n: int) -> ExperimentPlan:
    return ExperimentPlan(
        name=f"placement-{topology}",
        topology=topology,
        demand="flash-crowd",
        variants=("fast",),
        placements=PLACEMENTS,
        n=n,
        reps=REPS,
        seed=SEED,
        max_time=MAX_TIME,
    )


def _series_row(series) -> dict:
    trials = series.trials
    return {
        "trials": len(trials),
        "mean_satisfied_area": round(series.mean_satisfied_area(), 2),
        "mean_spawned": round(
            sum(t.replicas_spawned for t in trials) / len(trials), 2
        ),
        "mean_retired": round(
            sum(t.replicas_retired for t in trials) / len(trials), 2
        ),
        "peak_copies": max(t.replicas_peak for t in trials),
        "mean_placement_bytes": round(
            sum(t.placement_bytes for t in trials) / len(trials), 1
        ),
        "mean_bytes_total": round(series.mean_bytes(), 1),
    }


def test_placement_autoscaler(benchmark, report):
    plans = [_plan(topology, n) for topology, n in SCENARIOS]

    def run_all():
        return [plan.run(SerialBackend()) for plan in plans]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    payload = {
        "reps": REPS,
        "seed": SEED,
        "max_time": MAX_TIME,
        "quick_mode": QUICK,
        "placements": list(PLACEMENTS),
        "scenarios": {},
    }
    for plan, result in zip(plans, results):
        rows = {
            label: _series_row(result.series[label])
            for label in plan.series_labels()
        }
        static_area = rows["fast+static"]["mean_satisfied_area"]
        for label, row in rows.items():
            row["vs_static"] = round(
                row["mean_satisfied_area"] / static_area, 4
            )
            row["placement_overhead_fraction"] = round(
                row["mean_placement_bytes"] / row["mean_bytes_total"], 4
            )
        payload["scenarios"][plan.topology] = rows

    # Determinism gate: the same placement sweep on a process pool must
    # reproduce the serial trial rows bit-for-bit.
    check_plan = plans[0]
    with ProcessPoolBackend(max_workers=2) as pool:
        pooled = check_plan.run(pool)
    serial_rows = {
        label: results[0].series[label].trials for label in check_plan.series_labels()
    }
    pooled_rows = {
        label: pooled.series[label].trials for label in check_plan.series_labels()
    }
    payload["serial_equals_process"] = serial_rows == pooled_rows

    # Record before asserting so a red run still uploads the measured
    # numbers that diagnose it.
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    assert payload["serial_equals_process"], "placement sweep diverged across backends"

    for topology, rows in payload["scenarios"].items():
        static_area = rows["fast+static"]["mean_satisfied_area"]
        threshold = rows["fast+threshold"]
        # The headline claim: closing the loop beats static placement on
        # the paired flash-crowd satisfaction metric.
        assert threshold["mean_satisfied_area"] > static_area, (
            f"{topology}: autoscaler did not beat static placement "
            f"({threshold['mean_satisfied_area']} <= {static_area})"
        )
        assert threshold["mean_spawned"] > 0, f"{topology}: no copies spawned"
        # Control traffic stays cheap relative to the replication itself.
        for label, row in rows.items():
            assert row["placement_overhead_fraction"] < 0.25, (
                f"{topology}/{label}: placement overhead "
                f"{row['placement_overhead_fraction']} is not small"
            )

    lines = []
    for topology, rows in payload["scenarios"].items():
        lines.append(f"[{topology}]")
        for label, row in rows.items():
            lines.append(
                f"  {label}: area={row['mean_satisfied_area']} "
                f"(x{row['vs_static']} vs static), "
                f"spawned={row['mean_spawned']}, peak={row['peak_copies']}, "
                f"ctl-bytes={row['mean_placement_bytes']} "
                f"({100 * row['placement_overhead_fraction']:.1f}%)"
            )
    lines.append(f"serial == process: {payload['serial_equals_process']}")
    report.add("placement-autoscaler", "\n".join(lines))


CRASH_RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_placement_crash.json"
)

#: The crashed run must keep at least this share of the fault-free
#: autoscaler's satisfied area — the hardened control plane's gate.
CRASH_AREA_FLOOR = 0.9


def test_placement_controller_crash(report):
    """A controller crash mid-flash-crowd is survivable.

    The home node crashes during the demand spike while a fifth of the
    links flap; the controller loses its volatile state, resumes from
    its end-of-cycle checkpoint, and commands retry idempotently over
    the flapping links.  Gate: the satisfied area stays within 10% of
    the fault-free autoscaler run on the same topology/demand/seed.
    """
    from repro.core.variants import fast_consistency
    from repro.experiments.harness import TrialSpec, run_trial
    from repro.experiments.scenarios import build_demand, build_topology
    from repro.faults.generators import flapping_links
    from repro.faults.schedule import FaultSchedule, node_down, node_up
    from repro.placement.policies import PlacementSetup

    origin = sorted(build_topology("grid", 16, seed=SEED).nodes)[0]

    def run(fault_builder):
        # Fresh topology per run: a placement controller grows the
        # shared topology object as it spawns copies.
        topology = build_topology("grid", 16, seed=SEED)
        spec = TrialSpec(
            topology=topology,
            demand=build_demand("flash-crowd", topology, seed=SEED),
            config=fast_consistency(),
            seed=SEED,
            origin=origin,
            max_time=MAX_TIME,
            faults=fault_builder(topology) if fault_builder else None,
            placement=PlacementSetup(policy="threshold"),
        )
        trial, system = run_trial(spec)
        return trial, system

    fault_free, _ = run(None)

    def chaos(topology):
        # Crash the controller's home inside the flash-crowd spike
        # window ([10, 45) for the flash-crowd demand), with flapping
        # links layered on top so command/ack losses force the retry
        # path too.
        crash = FaultSchedule(
            events=(node_down(15.0, origin), node_up(25.0, origin)),
            name="controller-crash",
        )
        return (crash + flapping_links(topology, seed=SEED)).validate()

    crashed, system = run(chaos)

    # run_trial does not expose the controller; confirm the fault
    # process actually crashed and recovered the home instead.
    assert system.fault_process is not None
    applied = system.fault_process.stats
    ratio = (
        crashed.satisfied_area / fault_free.satisfied_area
        if fault_free.satisfied_area
        else 0.0
    )
    payload = {
        "seed": SEED,
        "max_time": MAX_TIME,
        "fault_free_area": round(fault_free.satisfied_area, 2),
        "crashed_area": round(crashed.satisfied_area, 2),
        "ratio": round(ratio, 4),
        "floor": CRASH_AREA_FLOOR,
        "fault_events_applied": applied,
    }
    CRASH_RESULT_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    assert applied.get("node_down", 0) >= 1, "home never crashed"
    assert applied.get("node_up", 0) >= 1, "home never recovered"
    assert ratio >= CRASH_AREA_FLOOR, (
        f"controller crash cost too much satisfaction: "
        f"{crashed.satisfied_area} vs fault-free {fault_free.satisfied_area} "
        f"(ratio {ratio:.3f} < {CRASH_AREA_FLOOR})"
    )

    report.add(
        "placement-controller-crash",
        f"fault-free area={payload['fault_free_area']} "
        f"crashed area={payload['crashed_area']} "
        f"(ratio {payload['ratio']}, floor {CRASH_AREA_FLOOR})",
    )
