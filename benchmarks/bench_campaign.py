"""Multi-plan campaign wall-clock: one shared pool vs a pool per plan.

The §5 scaling sweep (and every fault-swept study) is a *family* of
plans. Before the campaign layer, each plan paid the process-pool
spawn cost on its own; a :class:`~repro.experiments.campaign.Campaign`
runs the whole family over one persistent
:class:`~repro.experiments.backends.ProcessPoolBackend`, so workers are
forked once per campaign. This benchmark runs the same three-plan
family both ways, asserts the results are bit-identical, and records
both timings in ``BENCH_campaign.json`` at the repo root so the
trajectory is tracked across PRs.

Note: the recorded speedup is honest hardware-dependent data — on a
single-core CI runner fork/IPC overhead dominates either way, so the
pathology gate only arms on multi-core hosts.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.experiments.backends import ProcessPoolBackend
from repro.experiments.campaign import Campaign
from repro.experiments.plan import ExperimentPlan
from repro.sim.rng import derive_seed

REPS = 6
SIZES = (16, 25, 36)
WORKERS = 2

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"


def _plans() -> dict:
    return {
        str(n): ExperimentPlan(
            name=f"campaign-bench-{n}",
            topology="ba",
            demand="uniform",
            variants=("weak", "fast"),
            n=n,
            reps=REPS,
            seed=derive_seed(11, f"campaign-bench/{n}"),
        )
        for n in SIZES
    }


def test_campaign_shared_pool_bit_identical(benchmark, report):
    campaign = Campaign("campaign-bench", _plans())

    # Baseline: the pre-campaign shape — every plan gets (and pays for)
    # its own freshly spawned pool.
    t0 = time.perf_counter()
    per_plan = {}
    for key, plan in campaign.plans.items():
        with ProcessPoolBackend(max_workers=WORKERS) as backend:
            per_plan[key] = plan.run(backend)
    t_per_plan = time.perf_counter() - t0

    t0 = time.perf_counter()
    with ProcessPoolBackend(max_workers=WORKERS) as backend:
        shared = benchmark.pedantic(
            lambda: campaign.run(backend), rounds=1, iterations=1
        )
    t_shared = time.perf_counter() - t0

    # The acceptance bar: pool reuse is an implementation detail, not a
    # source of noise — per-plan series must match byte for byte.
    for key in campaign.plans:
        assert (
            per_plan[key].to_dict()["series"] == shared.results[key].to_dict()["series"]
        ), f"shared-pool campaign diverged on plan {key}"

    cpu_count = os.cpu_count() or 1
    speedup = round(t_per_plan / t_shared, 3) if t_shared else None
    payload = {
        "campaign": campaign.name,
        "plans": len(campaign.plans),
        "trials": campaign.total_trials(),
        "reps": REPS,
        "workers": WORKERS,
        "cpu_count": cpu_count,
        "per_plan_pool_seconds": round(t_per_plan, 4),
        "shared_pool_seconds": round(t_shared, 4),
        "speedup": speedup,
        "speedup_asserted": cpu_count >= 2,
        "bit_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # With real parallel hardware the gate only catches pathology (a
    # shared pool markedly slower than respawning one per plan); the
    # sub-second workload is too noisy for a tight >1.0 bar on
    # contended CI runners, and on a single core the honest number may
    # legitimately dip below it either way.
    if cpu_count >= 2:
        assert speedup is not None and speedup > 0.75, (
            f"shared pool pathologically slower than per-plan pools on "
            f"{cpu_count} cores: speedup={speedup}"
        )

    lines = [f"{key}: {value}" for key, value in payload.items()]
    report.add("campaign-shared-pool", "\n".join(lines))
