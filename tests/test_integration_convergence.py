"""Integration tests: whole-system convergence under adverse conditions.

Weak consistency's contract is eventual convergence in the face of
loss, crashes and partitions; these tests exercise the full stack
(engine + network + TSAE + protocols) against that contract.
"""

from __future__ import annotations

import pytest

from repro.core.system import ReplicationSystem
from repro.core.variants import (
    dynamic_fast_consistency,
    fast_consistency,
    weak_consistency,
)
from repro.demand.static import UniformRandomDemand, ZipfDemand
from repro.topology.brite import internet_like
from repro.topology.simple import grid, line, ring


class TestConvergenceUnderLoss:
    @pytest.mark.parametrize("loss", [0.1, 0.3])
    def test_update_still_reaches_everyone(self, loss):
        system = ReplicationSystem(
            internet_like(20, seed=1),
            UniformRandomDemand(seed=1),
            fast_consistency(),
            seed=1,
            loss=loss,
        )
        system.start()
        update = system.inject_write(0)
        done = system.run_until_replicated(update.uid, max_time=150.0)
        assert done is not None

    def test_loss_slows_but_does_not_break(self):
        def converge(loss):
            system = ReplicationSystem(
                ring(10),
                UniformRandomDemand(seed=2),
                weak_consistency(),
                seed=2,
                loss=loss,
            )
            system.start()
            update = system.inject_write(0)
            return system.run_until_replicated(update.uid, max_time=300.0)

        clean = converge(0.0)
        lossy = converge(0.4)
        assert clean is not None and lossy is not None
        assert lossy > clean


class TestConvergenceAcrossPartitions:
    def test_partition_heals_and_converges(self):
        system = ReplicationSystem(
            ring(8), UniformRandomDemand(seed=3), weak_consistency(), seed=3
        )
        system.start()
        update = system.inject_write(0)
        # Partition nodes 0-3 from 4-7 immediately.
        system.network.partition([[0, 1, 2, 3], [4, 5, 6, 7]])
        system.run_until(20.0)
        reached = system.nodes_with(update.uid)
        assert reached <= {0, 1, 2, 3}
        system.network.heal_partition()
        done = system.run_until_replicated(update.uid, max_time=100.0)
        assert done is not None

    def test_crashed_node_catches_up_after_restart(self):
        system = ReplicationSystem(
            ring(6), UniformRandomDemand(seed=4), weak_consistency(), seed=4
        )
        system.start()
        system.network.set_node_down(3)
        update = system.inject_write(0)
        system.run_until(20.0)
        assert 3 not in system.nodes_with(update.uid)
        system.network.set_node_up(3)
        done = system.run_until_replicated(update.uid, max_time=120.0)
        assert done is not None


class TestMultiWriterConvergence:
    def test_concurrent_writes_converge_to_identical_state(self):
        system = ReplicationSystem(
            internet_like(15, seed=5),
            UniformRandomDemand(seed=5),
            fast_consistency(),
            seed=5,
        )
        system.start()
        # Every node writes the same key concurrently: LWW must converge.
        for node in list(system.servers)[:10]:
            system.servers[node].local_write("contested", f"by-{node}")
        system.run_until(40.0)
        signatures = {
            server.store.content_signature() for server in system.servers.values()
        }
        assert len(signatures) == 1

    def test_interleaved_writes_during_propagation(self):
        system = ReplicationSystem(
            grid(4, 4), UniformRandomDemand(seed=6), fast_consistency(), seed=6
        )
        system.start()
        system.inject_write(0, key="a")
        system.run_until(1.0)
        system.inject_write(15, key="b")
        system.run_until(2.0)
        system.inject_write(5, key="a")  # overwrite mid-flight
        system.run_until(60.0)
        reference = system.servers[0]
        assert all(
            server.is_consistent_with(reference)
            for server in system.servers.values()
        )

    def test_write_log_growth_matches_writes(self):
        system = ReplicationSystem(
            ring(5), UniformRandomDemand(seed=7), weak_consistency(), seed=7
        )
        system.start()
        for i in range(7):
            system.inject_write(i % 5, key=f"k{i}")
        system.run_until(50.0)
        for server in system.servers.values():
            assert len(server.log) == 7
            assert server.summary().total_writes() == 7


class TestDynamicVariantIntegration:
    def test_advertised_system_converges_with_zipf_demand(self):
        topo = internet_like(20, seed=8)
        system = ReplicationSystem(
            topo,
            ZipfDemand(topo.nodes, seed=8),
            dynamic_fast_consistency(),
            seed=8,
        )
        system.start()
        update = system.inject_write(list(topo.nodes)[0])
        done = system.run_until_replicated(update.uid, max_time=100.0)
        assert done is not None
        # Advertisement traffic flowed.
        assert system.network.counters.by_kind.get("demand-advert", 0) > 0

    def test_advert_traffic_is_modest(self):
        topo = ring(10)
        system = ReplicationSystem(
            topo,
            UniformRandomDemand(seed=9),
            dynamic_fast_consistency(),
            seed=9,
        )
        system.start()
        system.run_until(10.0)
        counters = system.network.counters
        advert_bytes = counters.bytes_by_kind.get("demand-advert", 0)
        assert advert_bytes < counters.bytes_sent * 0.5


class TestScaleSmoke:
    def test_hundred_node_fast_run(self):
        system = ReplicationSystem(
            internet_like(100, seed=10),
            UniformRandomDemand(seed=10),
            fast_consistency(),
            seed=10,
        )
        system.start()
        update = system.inject_write(0)
        done = system.run_until_replicated(update.uid, max_time=80.0)
        assert done is not None
        assert done < 20.0
