"""Tests for the per-figure experiment drivers (reduced fidelity).

These tests run the real drivers with few repetitions; they assert the
*shape* of the paper's results (who wins, roughly by how much), not the
absolute values — see EXPERIMENTS.md for the calibrated runs.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    PAPER,
    ablation_experiment,
    partition_experiment,
    skew_experiment,
    staleness_experiment,
    figure3,
    figure_cdf,
    islands_experiment,
    overhead_experiment,
    scaling_experiment,
    strong_cost_experiment,
    table1_orderings,
    table2_dynamic,
    uniform_topologies,
)


class TestTable1:
    def test_paper_extremes_recovered(self):
        result = table1_orderings()
        assert result.worst == ("C", "A", "E", "D")
        assert result.best == ("D", "E", "A", "C")
        assert len(result.orders) == 24

    def test_paper_series_values(self):
        result = table1_orderings()
        by_order = {order: series for order, series, _ in result.orders}
        assert by_order[("C", "A", "E", "D")] == PAPER["fig3_worst"]
        assert by_order[("D", "E", "A", "C")] == PAPER["fig3_optimal"]

    def test_rows_render(self):
        rows = table1_orderings().rows()
        assert len(rows) == 24
        assert all(len(r) == 6 for r in rows)


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return figure3(reps=20, seed=3)

    def test_analytic_series_match_paper(self, result):
        assert result.worst == PAPER["fig3_worst"]
        assert result.optimal == PAPER["fig3_optimal"]

    def test_fast_beats_optimal_early(self, result):
        # §2: "our algorithm works even better than the optimal case."
        assert result.fast_simulated[0] > result.optimal[0]

    def test_fast_reaches_total_demand(self, result):
        assert result.fast_simulated[-1] == pytest.approx(28.0, abs=1.0)

    def test_rows_shape(self, result):
        rows = result.rows()
        assert len(rows) == 4


class TestFigureCdf:
    @pytest.fixture(scope="class")
    def result(self):
        return figure_cdf(n=30, reps=25, seed=2)

    def test_ordering_weak_slowest_fast_fastest(self, result):
        means = result.means
        assert means["fast (all replicas)"] < means["weak (all replicas)"]
        assert means["fast (high demand)"] < means["fast (all replicas)"]

    def test_high_demand_replica_about_one_session(self, result):
        assert result.means["fast (high demand)"] < 2.0

    def test_speedup_in_paper_ballpark(self, result):
        assert result.speedup_high_demand > 2.5

    def test_curves_are_cdfs(self, result):
        for name, values in result.curves.items():
            assert values == sorted(values), name
            assert 0.0 <= values[0] and values[-1] <= 1.0

    def test_rows_include_paper_references(self):
        result = figure_cdf(n=50, reps=5, seed=2)
        rows = result.rows()
        labels = [r[0] for r in rows]
        assert "weak (all replicas)" in labels
        paper_cells = {r[0]: r[1] for r in rows}
        assert paper_cells["weak (all replicas)"] == "6.1499"


class TestTable2Dynamic:
    @pytest.fixture(scope="class")
    def result(self):
        return table2_dynamic(reps=30, seed=4)

    def test_selection_sequences_match_paper(self, result):
        # §4's table: static visits D, A, C; dynamic visits B-D, B-C', B-A'.
        assert result.sequences["static"] == ["D", "A", "C"]
        assert result.sequences["dynamic"] == ["D", "C'", "A'"]

    def test_dynamic_reaches_hot_replica_sooner(self, result):
        assert (
            result.mean_time_to_c["dynamic-oracle"]
            < result.mean_time_to_c["static-table"]
        )

    def test_advertised_close_to_oracle(self, result):
        assert (
            result.mean_time_to_c["dynamic-advertised"]
            < result.mean_time_to_c["static-table"]
        )

    def test_dynamic_serves_more_requests_midway(self, result):
        # At t=3 the dynamic variants have C' (9 req/unit) consistent
        # more often than the static variant.
        assert (
            result.satisfied_at["dynamic-oracle"][2]
            > result.satisfied_at["static-table"][2]
        )


class TestScaling:
    def test_doubling_nodes_grows_sessions_sublinearly(self):
        result = scaling_experiment(sizes=(25, 50), reps=10, seed=5)
        s25 = result.rows_by_size[25]
        s50 = result.rows_by_size[50]
        # Doubling nodes must NOT double sessions (diameter effect, §5).
        assert s50["weak_mean"] < 1.6 * s25["weak_mean"]
        assert s50["fast_mean"] < 1.6 * s25["fast_mean"]

    def test_rows_render(self):
        result = scaling_experiment(sizes=(25,), reps=4, seed=5)
        assert len(result.rows()) == 1


class TestUniformTopologies:
    def test_fast_wins_on_every_uniform_topology(self):
        result = uniform_topologies(reps=8, seed=6)
        for name, data in result.rows_by_name.items():
            assert data["fast_mean"] <= data["weak_mean"] * 1.05, name
            assert data["fast_top_mean"] < data["weak_mean"], name


class TestIslands:
    def test_bridging_helps(self):
        result = islands_experiment(reps=4, seed=7)
        assert result.islands_detected == 2
        assert (
            result.mean_far_leader["fast+bridges"]
            < result.mean_far_leader["fast"]
        )
        assert (
            result.mean_far_island["fast+bridges"]
            < result.mean_far_island["fast"]
        )


class TestOverhead:
    def test_fast_adds_small_byte_overhead_big_latency_win(self):
        result = overhead_experiment(reps=4, seed=8, n=30, horizon=8.0)
        weak = result.rows_by_variant["weak"]
        fast = result.rows_by_variant["fast"]
        # §8: "requires few additional bytes".
        assert fast["bytes"] < weak["bytes"] * 1.35
        assert fast["fast_share"] < 0.25
        # And the latency benefit is real.
        assert fast["time_top"] < weak["time_top"]


class TestAblation:
    def test_both_optimisations_contribute(self):
        result = ablation_experiment(reps=10, seed=9, n=30)
        rows = result.rows_by_variant
        # Each optimisation alone beats weak on the high-demand metric...
        assert rows["ordered-only"]["mean_top"] < rows["weak"]["mean_top"]
        assert rows["push-only"]["mean_top"] < rows["weak"]["mean_top"]
        # ...and the combination is the best of the paper variants.
        assert rows["fast"]["mean_top"] <= rows["ordered-only"]["mean_top"]
        assert rows["fast"]["mean_top"] <= rows["weak"]["mean_top"]


class TestStrongCost:
    def test_strong_pays_latency_and_messages(self):
        result = strong_cost_experiment(sizes=(10, 25), reps=3, seed=10)
        r10 = result.rows_by_size[10]
        r25 = result.rows_by_size[25]
        # Message cost grows linearly with n (3(n-1)).
        assert r25["strong_messages"] > r10["strong_messages"]
        assert r10["strong_messages"] == pytest.approx(27.0, abs=1.0)
        # Strong writes block the client; weak writes return immediately.
        assert r10["strong_latency"] > 0.0
        assert r10["weak_latency"] == 0.0


class TestStaleness:
    def test_fresh_knowledge_beats_frozen_snapshot(self):
        result = staleness_experiment(reps=8, seed=3, n=30)
        rows = result.rows_by_variant
        assert rows["oracle"]["mean_top"] <= rows["snapshot (§3)"]["mean_top"] * 1.1
        # Advert traffic scales inversely with the period.
        assert (
            rows["advertised/0.5"]["advert_bytes"]
            > rows["advertised/8"]["advert_bytes"]
            > 0
        )
        assert rows["oracle"]["advert_bytes"] == 0


class TestPartition:
    def test_weak_consistency_survives_segmentation(self):
        result = partition_experiment(reps=4, seed=5, n=20, heal_time=4.0)
        rows = result.rows_by_variant
        for variant in ("weak", "fast"):
            assert rows[variant]["time_all"] > 4.0  # far side waited for heal
            assert rows[variant]["after_heal"] < 10.0
        assert result.strong_commit_rate_during_partition == 0.0


class TestSkew:
    def test_flat_demand_disables_push(self):
        result = skew_experiment(reps=4, seed=6, n=24)
        rows = result.rows_by_skew
        assert rows["flat"]["push_fraction"] == 0.0
        assert rows["uniform"]["push_fraction"] > 0.05
