"""Tests for the experiment harness and scenario registry."""

from __future__ import annotations

import pytest

from repro.core.variants import fast_consistency, weak_consistency
from repro.demand.static import UniformRandomDemand
from repro.errors import ExperimentError
from repro.experiments.harness import TrialSpec, run_experiment, run_trial
from repro.experiments.scenarios import (
    DEMANDS,
    TOPOLOGIES,
    VARIANTS,
    build_demand,
    build_system,
    build_topology,
    build_variant,
)
from repro.experiments.tables import format_kv, format_table
from repro.topology.simple import ring


class TestRunTrial:
    def test_trial_measures_everything(self):
        topo = ring(8)
        spec = TrialSpec(
            topology=topo,
            demand=UniformRandomDemand(seed=1),
            config=fast_consistency(),
            seed=1,
            origin=0,
            max_time=60.0,
        )
        trial, system = run_trial(spec)
        assert trial.time_all is not None
        assert trial.time_top is not None
        assert trial.time_top1 is not None
        assert trial.time_top1 <= trial.time_all
        assert trial.mean_time <= trial.time_all
        assert trial.diameter == 4
        assert trial.messages > 0
        assert system.all_have((0, 1))

    def test_trial_censors_on_timeout(self):
        spec = TrialSpec(
            topology=ring(12),
            demand=UniformRandomDemand(seed=1),
            config=weak_consistency(),
            seed=1,
            origin=0,
            max_time=0.2,
        )
        trial, _ = run_trial(spec)
        assert trial.time_all is None


class TestRunExperiment:
    def test_paired_reps_across_variants(self):
        result = run_experiment(
            name="t",
            variants={"weak": weak_consistency(), "fast": fast_consistency()},
            topology_factory=lambda s: ring(8),
            demand_factory=lambda topo, s: UniformRandomDemand(seed=s),
            reps=3,
            seed=2,
        )
        assert set(result.series) == {"weak", "fast"}
        for series in result.series.values():
            assert len(series.trials) == 3
        # Paired: same origins per rep in both variants.
        origins_weak = [t.origin for t in result.series["weak"].trials]
        origins_fast = [t.origin for t in result.series["fast"].trials]
        assert origins_weak == origins_fast

    def test_experiment_reproducible(self):
        def run():
            return run_experiment(
                name="t",
                variants={"weak": weak_consistency()},
                topology_factory=lambda s: ring(6),
                demand_factory=lambda topo, s: UniformRandomDemand(seed=s),
                reps=2,
                seed=5,
            )

        a, b = run(), run()
        assert [t.time_all for t in a.series["weak"].trials] == [
            t.time_all for t in b.series["weak"].trials
        ]

    def test_params_recorded(self):
        result = run_experiment(
            name="t",
            variants={"weak": weak_consistency()},
            topology_factory=lambda s: ring(6),
            demand_factory=lambda topo, s: UniformRandomDemand(seed=s),
            reps=1,
            seed=0,
            params={"n": 6},
        )
        assert result.params["n"] == 6
        assert result.params["reps"] == 1

    def test_zero_reps_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment(
                name="t",
                variants={"weak": weak_consistency()},
                topology_factory=lambda s: ring(6),
                demand_factory=lambda topo, s: UniformRandomDemand(seed=s),
                reps=0,
            )

    def test_no_variants_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment(
                name="t",
                variants={},
                topology_factory=lambda s: ring(6),
                demand_factory=lambda topo, s: UniformRandomDemand(seed=s),
                reps=1,
            )


class TestScenarioRegistry:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_every_topology_buildable_and_connected(self, name):
        topo = build_topology(name, n=16, seed=1)
        assert topo.num_nodes >= 4
        assert topo.is_connected()

    @pytest.mark.parametrize("name", sorted(DEMANDS))
    def test_every_demand_buildable(self, name):
        topo = build_topology("grid", n=16, seed=1)
        model = build_demand(name, topo, seed=1)
        value = model.demand(list(topo.nodes)[0], 0.0)
        assert value >= 0.0

    @pytest.mark.parametrize("name", sorted(VARIANTS))
    def test_every_variant_buildable(self, name):
        config = build_variant(name)
        config.validate()

    def test_unknown_names_raise(self):
        with pytest.raises(ExperimentError):
            build_topology("moebius", 10)
        with pytest.raises(ExperimentError):
            build_demand("psychic", ring(4))
        with pytest.raises(ExperimentError):
            build_variant("quantum")

    def test_build_system_end_to_end(self):
        system = build_system(topology="ring", variant="fast", n=8, seed=3)
        system.start()
        update = system.inject_write(0)
        assert system.run_until_replicated(update.uid, max_time=80.0) is not None

    def test_build_system_trace_defaults_to_metrics_categories(self):
        from repro.core.metrics import METRIC_TRACE_CATEGORIES

        system = build_system(topology="ring", n=6, seed=1)
        for category in METRIC_TRACE_CATEGORIES:
            assert system.sim.trace.wants(category)
        assert not system.sim.trace.wants("net.send")
        assert not system.sim.trace.wants("session.start")

    def test_build_system_trace_full_and_off(self):
        full = build_system(topology="ring", n=6, seed=1, trace="full")
        assert full.sim.trace.wants("net.send")
        off = build_system(topology="ring", n=6, seed=1, trace="off")
        assert not off.sim.trace.wants("fast.deliver")
        with pytest.raises(ExperimentError):
            build_system(topology="ring", n=6, seed=1, trace="everything")


class TestTables:
    def test_format_table_aligns(self):
        text = format_table(
            ["name", "value"], [("weak", 6.15), ("fast", 3.93)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "6.15" in text and "fast" in text

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ExperimentError):
            format_table(["a", "b"], [("only-one",)])

    def test_numbers_right_aligned(self):
        text = format_table(["k", "v"], [("x", 1), ("longlabel", 22)])
        lines = text.splitlines()
        assert lines[-1].endswith("22")
        assert lines[-2].endswith(" 1")

    def test_format_kv(self):
        text = format_kv("title", [("a", 1), ("b", "two")])
        assert text.splitlines() == ["title", "  a: 1", "  b: two"]
