"""TCP framing and socket transport: decoding, reconnect, channels.

The framing layer (``encode_frame`` / ``FrameDecoder``) is pure and
tested exhaustively, including a hypothesis sweep over random message
sizes and arbitrary chunk boundaries.  The transport tests run two
``TcpTransport`` instances on one event loop — real sockets, no
subprocesses — which keeps them fast while still exercising connect,
frame dispatch, drop-while-disconnected, and reconnect-after-restart.
"""

from __future__ import annotations

import asyncio
import socket

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TransportError
from repro.runtime.live import AsyncioRuntime
from repro.runtime.tcp import (
    HEADER_BYTES,
    FrameDecoder,
    SyncFrameChannel,
    TcpTransport,
    corrupt_frame_bytes,
    encode_frame,
)
from repro.topology.simple import line


class TestFraming:
    def test_round_trip_one_frame(self):
        payload = {"hello": [1, 2, 3]}
        frames = FrameDecoder().feed(encode_frame(payload))
        assert frames == [payload]

    def test_byte_by_byte_partial_reads(self):
        # A frame arriving one byte at a time decodes exactly once,
        # only when complete.
        data = encode_frame(("update", 42))
        decoder = FrameDecoder()
        frames = []
        for i in range(len(data)):
            got = decoder.feed(data[i : i + 1])
            if i < len(data) - 1:
                assert got == []
            frames.extend(got)
        assert frames == [("update", 42)]
        assert decoder.pending_bytes == 0

    def test_coalesced_frames_in_one_read(self):
        blob = b"".join(encode_frame(i) for i in range(5))
        assert FrameDecoder().feed(blob) == [0, 1, 2, 3, 4]

    def test_split_across_header_boundary(self):
        data = encode_frame("x" * 100)
        decoder = FrameDecoder()
        assert decoder.feed(data[: HEADER_BYTES - 1]) == []
        assert decoder.feed(data[HEADER_BYTES - 1 :]) == ["x" * 100]

    def test_oversized_frame_rejected_with_one_line_error(self):
        big = encode_frame("y" * 4096)
        decoder = FrameDecoder(max_frame_bytes=1024)
        with pytest.raises(TransportError) as excinfo:
            decoder.feed(big)
        assert "\n" not in str(excinfo.value)
        assert "1024" in str(excinfo.value)

    def test_oversized_frame_rejected_before_buffering(self):
        # Only the header is enough to refuse: the decoder must not
        # wait for (or store) the oversized body.
        big = encode_frame("y" * 4096)
        decoder = FrameDecoder(max_frame_bytes=1024)
        with pytest.raises(TransportError):
            decoder.feed(big[: HEADER_BYTES])

    def test_encode_refuses_oversized_payload(self):
        with pytest.raises(TransportError):
            encode_frame("z" * 4096, max_frame_bytes=128)

    @settings(max_examples=40, deadline=None)
    @given(
        payloads=st.lists(
            st.binary(min_size=0, max_size=2048), min_size=1, max_size=8
        ),
        data=st.data(),
    )
    def test_any_chunking_recovers_every_frame_in_order(self, payloads, data):
        stream = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        frames = []
        position = 0
        while position < len(stream):
            size = data.draw(
                st.integers(min_value=1, max_value=len(stream) - position)
            )
            frames.extend(decoder.feed(stream[position : position + size]))
            position += size
        assert frames == payloads
        assert decoder.pending_bytes == 0


class TestCorruptFrames:
    def test_corrupt_frame_bytes_keeps_header_and_length(self):
        frame = encode_frame(("update", 7))
        garbled = corrupt_frame_bytes(frame)
        assert len(garbled) == len(frame)
        assert garbled[:HEADER_BYTES] == frame[:HEADER_BYTES]
        assert garbled != frame

    def test_corrupting_empty_body_refused(self):
        with pytest.raises(TransportError):
            corrupt_frame_bytes(b"\x00" * HEADER_BYTES)

    def test_decoder_skips_corrupt_frame_and_resynchronises(self):
        # valid | corrupt | valid on one stream: the garbage is metered
        # and skipped, both valid frames decode, nothing raises.
        reasons = []
        decoder = FrameDecoder(on_corrupt=reasons.append)
        stream = (
            encode_frame("a")
            + corrupt_frame_bytes(encode_frame("garbled"))
            + encode_frame("b")
        )
        assert decoder.feed(stream) == ["a", "b"]
        assert decoder.corrupt_frames == 1
        assert len(reasons) == 1
        assert "CRC" in reasons[0]
        assert decoder.pending_bytes == 0

    def test_undecodable_body_with_valid_crc_also_skipped(self):
        # A body that passes the CRC but is not unpicklable must be
        # skipped the same way — the pump never sees the exception.
        import struct
        import zlib

        body = b"\x00not-a-pickle"
        frame = struct.pack(">II", len(body), zlib.crc32(body)) + body
        decoder = FrameDecoder()
        assert decoder.feed(frame + encode_frame("ok")) == ["ok"]
        assert decoder.corrupt_frames == 1

    @settings(max_examples=60, deadline=None)
    @given(
        payloads=st.lists(
            st.binary(min_size=1, max_size=512), min_size=1, max_size=8
        ),
        corrupt_after=st.lists(st.booleans(), min_size=1, max_size=8),
        data=st.data(),
    )
    def test_valid_frames_decode_exactly_once_amid_corruption(
        self, payloads, corrupt_after, data
    ):
        # Satellite property: any interleaving of corrupt injections
        # with valid frames, fed in arbitrary chunks, decodes every
        # valid frame exactly once, in order, and never raises.
        stream = b""
        corrupted = 0
        for i, payload in enumerate(payloads):
            frame = encode_frame(payload)
            if corrupt_after[i % len(corrupt_after)]:
                stream += corrupt_frame_bytes(frame)
                corrupted += 1
            stream += frame
        decoder = FrameDecoder()
        frames = []
        position = 0
        while position < len(stream):
            size = data.draw(
                st.integers(min_value=1, max_value=len(stream) - position)
            )
            frames.extend(decoder.feed(stream[position : position + size]))
            position += size
        assert frames == payloads
        assert decoder.corrupt_frames == corrupted
        assert decoder.pending_bytes == 0


class TestSyncFrameChannel:
    def test_round_trip_over_socketpair(self):
        left_sock, right_sock = socket.socketpair()
        left = SyncFrameChannel(left_sock)
        right = SyncFrameChannel(right_sock)
        try:
            left.send(("ping", 1))
            assert right.recv(timeout=2.0) == ("ping", 1)
            right.send(("pong", 2))
            right.send(("pong", 3))
            assert left.recv(timeout=2.0) == ("pong", 2)
            assert left.recv(timeout=2.0) == ("pong", 3)
        finally:
            left.close()
            right.close()

    def test_recv_timeout_raises(self):
        left_sock, right_sock = socket.socketpair()
        channel = SyncFrameChannel(left_sock)
        try:
            with pytest.raises(TransportError):
                channel.recv(timeout=0.05)
        finally:
            channel.close()
            right_sock.close()

    def test_recv_after_peer_close_raises(self):
        left_sock, right_sock = socket.socketpair()
        channel = SyncFrameChannel(left_sock)
        right_sock.close()
        try:
            with pytest.raises(TransportError):
                channel.recv(timeout=1.0)
        finally:
            channel.close()


def _two_transports(loop_seed=1, **kwargs):
    """Two TcpTransports on one loop, each hosting one node of a ring."""
    topology = line(2)
    runtime_a = AsyncioRuntime(seed=loop_seed, time_scale=0.001)
    runtime_b = AsyncioRuntime(seed=loop_seed + 1, time_scale=0.001)
    runtime_a.start()
    runtime_b.start()
    a = TcpTransport(runtime_a, topology, local_nodes=[0], **kwargs)
    b = TcpTransport(runtime_b, topology, local_nodes=[1], **kwargs)
    return a, b


async def _wait_for(predicate, timeout=5.0, interval=0.005):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(interval)


class TestTcpTransport:
    def test_delivers_between_two_transports(self):
        async def main():
            a, b = _two_transports()
            received = []
            try:
                addr_a = await a.serve()
                addr_b = await b.serve()
                directory = {0: addr_a, 1: addr_b}
                a.update_directory(directory)
                b.update_directory(directory)
                a.attach(0, lambda src, msg: None)
                b.attach(1, lambda src, msg: received.append((src, msg)))
                a.start_pumps()
                b.start_pumps()
                for i in range(5):
                    assert a.send(0, 1, f"m{i}") is True
                await _wait_for(lambda: len(received) == 5)
                assert received == [(0, f"m{i}") for i in range(5)]
                assert a.counters.messages_sent == 5
                assert b.counters.messages_delivered == 5
            finally:
                await a.close()
                await b.close()

        asyncio.run(main())

    def test_reconnects_after_peer_restart(self):
        async def main():
            a, b = _two_transports(reconnect_base=0.01, reconnect_cap=0.05)
            received = []
            try:
                addr_a = await a.serve()
                addr_b = await b.serve()
                directory = {0: addr_a, 1: addr_b}
                a.update_directory(directory)
                b.update_directory(directory)
                a.attach(0, lambda src, msg: None)
                b.attach(1, lambda src, msg: received.append(msg))
                a.start_pumps()
                b.start_pumps()
                a.send(0, 1, "before")
                await _wait_for(lambda: received == ["before"])

                # Kill node 1's process stand-in entirely...
                await b.close()
                a.send(0, 1, "lost")  # dropped and metered, never raises
                await asyncio.sleep(0.05)

                # ...and restart it on the same advertised port.
                runtime_b2 = AsyncioRuntime(seed=9, time_scale=0.001)
                runtime_b2.start()
                b2 = TcpTransport(
                    runtime_b2,
                    line(2),
                    local_nodes=[1],
                    reconnect_base=0.01,
                    reconnect_cap=0.05,
                )
                await b2.serve(addr_b[0], addr_b[1])
                b2.update_directory(directory)
                b2.attach(1, lambda src, msg: received.append(msg))
                b2.start_pumps()
                try:
                    # Delivery resumes once the peer link reconnects;
                    # keep sending (ignore_disconnects semantics: frames
                    # sent while down are lost, not queued forever).
                    async def pump_sends():
                        for i in range(200):
                            a.send(0, 1, f"after{i}")
                            if any(
                                isinstance(m, str) and m.startswith("after")
                                for m in received
                            ):
                                return
                            await asyncio.sleep(0.02)

                    await asyncio.wait_for(pump_sends(), timeout=10.0)
                    assert any(
                        isinstance(m, str) and m.startswith("after")
                        for m in received
                    )
                    assert "lost" not in received
                finally:
                    await b2.close()
            finally:
                await a.close()

        asyncio.run(main())

    def test_send_refused_by_link_state(self):
        async def main():
            a, b = _two_transports()
            try:
                addr_a = await a.serve()
                addr_b = await b.serve()
                directory = {0: addr_a, 1: addr_b}
                a.update_directory(directory)
                b.update_directory(directory)
                a.attach(0, lambda src, msg: None)
                b.attach(1, lambda src, msg: None)
                a.start_pumps()
                b.start_pumps()
                a.set_node_down(1)
                assert a.send(0, 1, "m") is False
                assert a.counters.messages_dropped == 1
                a.set_node_up(1)
                assert a.send(0, 1, "m") is True
            finally:
                await a.close()
                await b.close()

        asyncio.run(main())

    def test_oversized_inbound_frame_recorded_not_fatal(self):
        async def main():
            topology = line(2)
            runtime = AsyncioRuntime(seed=1, time_scale=0.001)
            runtime.start()
            b = TcpTransport(
                runtime, topology, local_nodes=[1], max_frame_bytes=512
            )
            try:
                addr = await b.serve()
                b.attach(1, lambda src, msg: None)
                b.start_pumps()
                reader, writer = await asyncio.open_connection(*addr)
                writer.write(encode_frame("x" * 4096))
                await writer.drain()
                await _wait_for(lambda: len(b.frame_errors) == 1)
                assert "\n" not in b.frame_errors[0]
                writer.close()
            finally:
                await b.close()

        asyncio.run(main())
