"""Tests for CDFs and result persistence (repro.experiments.cdf/.results)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.cdf import EmpiricalCdf, session_grid
from repro.experiments.results import ExperimentResult, TrialResult, VariantSeries


def make_trial(rep=0, time_all=5.0, time_top=1.0, **overrides):
    defaults = dict(
        rep=rep,
        origin=0,
        time_all=time_all,
        time_top=time_top,
        time_top1=time_top,
        mean_time=3.0,
        diameter=5,
        messages=100,
        bytes_sent=5000,
    )
    defaults.update(overrides)
    return TrialResult(**defaults)


class TestEmpiricalCdf:
    def test_evaluate_step_function(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(1.0) == 0.25
        assert cdf.evaluate(2.5) == 0.5
        assert cdf.evaluate(4.0) == 1.0

    def test_on_grid_monotone(self):
        cdf = EmpiricalCdf([3.0, 1.0, 2.0, 8.0, 5.0])
        grid = session_grid(10.0, 1.0)
        values = cdf.on_grid(grid)
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_censored_samples_counted_not_included(self):
        cdf = EmpiricalCdf([1.0, None, 2.0, None])
        assert cdf.count == 2
        assert cdf.censored == 2
        assert cdf.mean() == 1.5

    def test_quantiles(self):
        cdf = EmpiricalCdf([0.0, 10.0])
        assert cdf.quantile(0.0) == 0.0
        assert cdf.quantile(0.5) == 5.0
        assert cdf.quantile(1.0) == 10.0
        with pytest.raises(ExperimentError):
            cdf.quantile(1.5)

    def test_single_sample_quantile(self):
        assert EmpiricalCdf([4.0]).quantile(0.7) == 4.0

    def test_std(self):
        cdf = EmpiricalCdf([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert cdf.std() == pytest.approx(2.138, abs=0.01)
        assert EmpiricalCdf([1.0]).std() == 0.0

    def test_empty_set_raises(self):
        empty = EmpiricalCdf([])
        with pytest.raises(ExperimentError):
            empty.mean()
        with pytest.raises(ExperimentError):
            empty.evaluate(1.0)
        with pytest.raises(ExperimentError):
            empty.summary()

    def test_summary_row(self):
        stats = EmpiricalCdf([1.0, 2.0, 3.0]).summary()
        assert stats.count == 3
        assert stats.mean == 2.0
        assert stats.median == 2.0
        assert stats.maximum == 3.0
        assert len(stats.row()) == 7

    def test_session_grid(self):
        grid = session_grid(2.0, 0.5)
        assert grid == [0.0, 0.5, 1.0, 1.5, 2.0]
        with pytest.raises(ExperimentError):
            session_grid(0.0, 0.5)


class TestVariantSeries:
    def test_cdfs_from_trials(self):
        series = VariantSeries("fast")
        series.add(make_trial(time_all=4.0, time_top=1.0))
        series.add(make_trial(time_all=6.0, time_top=2.0))
        assert series.cdf_all().mean() == 5.0
        assert series.cdf_top().mean() == 1.5
        assert series.cdf_top1().mean() == 1.5

    def test_traffic_means(self):
        series = VariantSeries("weak")
        series.add(make_trial(messages=100, bytes_sent=1000))
        series.add(make_trial(messages=200, bytes_sent=3000))
        assert series.mean_messages() == 150.0
        assert series.mean_bytes() == 2000.0

    def test_empty_series_raises(self):
        with pytest.raises(ExperimentError):
            VariantSeries("x").mean_messages()


class TestExperimentResult:
    def test_variant_get_or_create(self):
        result = ExperimentResult("exp")
        series = result.variant("fast")
        assert result.variant("fast") is series

    def test_json_roundtrip(self, tmp_path):
        result = ExperimentResult("exp", params={"n": 50})
        result.variant("weak").add(make_trial(rep=0))
        result.variant("weak").add(make_trial(rep=1, time_all=None))
        result.notes["paper"] = 6.15
        path = tmp_path / "result.json"
        result.save(path)
        loaded = ExperimentResult.load(path)
        assert loaded.name == "exp"
        assert loaded.params["n"] == 50
        assert loaded.notes["paper"] == 6.15
        trials = loaded.series["weak"].trials
        assert len(trials) == 2
        assert trials[1].time_all is None
        assert trials[0].messages == 100

    def test_malformed_payload_raises(self):
        with pytest.raises(ExperimentError):
            ExperimentResult.from_dict({"name": "x", "series": {"v": [{"bogus": 1}]}})
