"""Tests for the telemetry primitives: moments, sketches, registry.

The hypothesis properties pin the subsystem's load-bearing claims:

* a :class:`QuantileSketch`'s answers are within its *self-certified*
  rank-error bound of the exact sorted data, for any stream;
* ``merge(a, b)`` answers like a sketch of the concatenated stream,
  again within the merged sketch's own bound;
* ``RunningMoments.merge`` matches one-pass Welford to 1e-9.
"""

from __future__ import annotations

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.telemetry import (
    Counter,
    Gauge,
    MetricRegistry,
    QuantileSketch,
    RunningMoments,
    SnapshotEmitter,
    read_snapshots,
    series_id,
)

# Finite, sane floats; wide range to stress compaction orderings.
values_strategy = st.lists(
    st.floats(
        min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=400,
)


def exact_rank_window(data, value):
    """``(#{x < value}, #{x <= value})`` over the exact data."""
    below = sum(1 for x in data if x < value)
    at_or_below = sum(1 for x in data if x <= value)
    return below, at_or_below


def assert_within_bound(sketch, data, p):
    """The sketch's ``quantile(p)`` lands within ``rank_error`` ranks of
    the target rank in the exact data."""
    value = sketch.quantile(p)
    target = p * len(data)
    below, at_or_below = exact_rank_window(data, value)
    error = sketch.rank_error
    assert below - error <= target <= at_or_below + error, (
        p,
        value,
        target,
        below,
        at_or_below,
        error,
    )


# ---------------------------------------------------------------------------
# RunningMoments
# ---------------------------------------------------------------------------


class TestRunningMoments:
    def test_small_exact(self):
        m = RunningMoments()
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            m.add(v)
        assert m.count == 8
        assert m.mean == pytest.approx(5.0)
        assert m.variance() == pytest.approx(32.0 / 7.0)
        assert m.minimum == 2.0 and m.maximum == 9.0

    def test_rejects_nan(self):
        with pytest.raises(ExperimentError):
            RunningMoments().add(float("nan"))

    def test_below_two_samples_variance_is_zero(self):
        assert RunningMoments().variance() == 0.0
        single = RunningMoments()
        single.add(3.0)
        assert single.variance() == 0.0
        assert single.std() == 0.0

    def test_roundtrips(self):
        m = RunningMoments()
        m.extend([1.5, -2.25, 8.0])
        via_dict = RunningMoments.from_dict(m.to_dict())
        via_pickle = pickle.loads(pickle.dumps(m))
        for copy in (via_dict, via_pickle):
            assert copy.to_dict() == m.to_dict()

    @given(values_strategy, values_strategy)
    def test_merge_matches_one_pass_welford(self, left, right):
        a = RunningMoments()
        a.extend(left)
        b = RunningMoments()
        b.extend(right)
        a.merge(b)

        one_pass = RunningMoments()
        one_pass.extend(left + right)

        assert a.count == one_pass.count
        assert a.minimum == one_pass.minimum
        assert a.maximum == one_pass.maximum
        scale = max(1.0, abs(one_pass.mean))
        assert abs(a.mean - one_pass.mean) <= 1e-9 * scale
        va, vb = a.variance(), one_pass.variance()
        vscale = max(1.0, abs(vb))
        assert abs(va - vb) <= 1e-6 * vscale

    @given(values_strategy)
    def test_merge_into_empty_is_identity(self, values):
        src = RunningMoments()
        src.extend(values)
        dst = RunningMoments()
        dst.merge(src)
        assert dst.to_dict() == src.to_dict()


# ---------------------------------------------------------------------------
# QuantileSketch
# ---------------------------------------------------------------------------


class TestQuantileSketch:
    def test_exact_below_k(self):
        sketch = QuantileSketch(k=64)
        data = [float(v) for v in range(50)]
        for v in data:
            sketch.add(v)
        assert sketch.rank_error == 0
        assert sketch.quantile(0.0) == 0.0
        assert sketch.quantile(1.0) == 49.0
        assert sketch.quantile(0.5) == pytest.approx(24.0)

    def test_empty_raises(self):
        with pytest.raises(ExperimentError):
            QuantileSketch().quantile(0.5)

    def test_bad_p_raises(self):
        sketch = QuantileSketch()
        sketch.add(1.0)
        with pytest.raises(ExperimentError):
            sketch.quantile(1.5)

    def test_deterministic(self):
        a, b = QuantileSketch(k=32), QuantileSketch(k=32)
        for i in range(1000):
            v = float((i * 2654435761) % 10007)
            a.add(v)
            b.add(v)
        assert a.to_dict() == b.to_dict()

    def test_bound_stays_small_at_scale(self):
        sketch = QuantileSketch(k=256)
        for i in range(100_000):
            sketch.add(float((i * 2654435761) % 999983))
        # The certified bound must stay a small fraction of the stream.
        assert sketch.error_fraction() < 0.03
        # And the state must stay tiny relative to the stream.
        assert len(pickle.dumps(sketch)) < 100_000

    def test_roundtrips(self):
        sketch = QuantileSketch(k=16)
        for i in range(200):
            sketch.add(float(i % 37))
        via_dict = QuantileSketch.from_dict(sketch.to_dict())
        via_pickle = pickle.loads(pickle.dumps(sketch))
        via_json = QuantileSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        )
        for copy in (via_dict, via_pickle, via_json):
            assert copy.to_dict() == sketch.to_dict()
            assert copy.rank_error == sketch.rank_error

    @settings(max_examples=60)
    @given(values_strategy, st.integers(min_value=8, max_value=64))
    def test_quantiles_within_certified_bound(self, values, k):
        sketch = QuantileSketch(k=k)
        for v in values:
            sketch.add(v)
        assert sketch.count == len(values)
        assert sketch.quantile(0.0) == min(values)
        assert sketch.quantile(1.0) == max(values)
        for p in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            assert_within_bound(sketch, values, p)

    @settings(max_examples=60)
    @given(values_strategy, values_strategy, st.integers(min_value=8, max_value=32))
    def test_merge_equivalent_to_concatenated_stream(self, left, right, k):
        a = QuantileSketch(k=k)
        for v in left:
            a.add(v)
        b = QuantileSketch(k=k)
        for v in right:
            b.add(v)
        a.merge(b)
        combined = left + right
        assert a.count == len(combined)
        assert a.quantile(0.0) == min(combined)
        assert a.quantile(1.0) == max(combined)
        for p in (0.25, 0.5, 0.9):
            assert_within_bound(a, combined, p)


# ---------------------------------------------------------------------------
# Counter / Gauge / registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ExperimentError):
            c.inc(-1)

    def test_gauge_last_wins(self):
        g = Gauge()
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5

    def test_series_identity(self):
        assert series_id("x") == "x"
        assert series_id("x", (("a", "1"), ("b", "2"))) == "x{a=1,b=2}"

    def test_get_or_create_and_type_conflict(self):
        registry = MetricRegistry()
        c = registry.counter("ops", plan="p")
        assert registry.counter("ops", plan="p") is c
        assert registry.get("ops", plan="p") is c
        assert registry.get("ops", plan="other") is None
        with pytest.raises(ExperimentError):
            registry.gauge("ops", plan="p")

    def test_merge_semantics(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.moments("m").extend([1.0, 2.0])
        b.moments("m").extend([3.0])
        a.sketch("q", k=16).add(1.0)
        b.sketch("q", k=16).add(2.0)
        a.merge(b)
        assert a.counter("n").value == 5
        assert a.gauge("g").value == 9.0
        assert a.moments("m").count == 3
        assert a.moments("m").mean == pytest.approx(2.0)
        assert a.sketch("q").count == 2

    def test_snapshot_restore_roundtrip_bit_identical(self):
        registry = MetricRegistry()
        registry.counter("campaign.trials", plan="ring", series="fast").inc(7)
        registry.gauge("uptime").set(12.5)
        registry.moments("t", plan="ring").extend([0.5, 1.5, 9.0])
        sk = registry.sketch("t.sketch", k=16, plan="ring")
        for i in range(100):
            sk.add(float(i))
        restored = MetricRegistry.restore(
            json.loads(registry.to_json())
        )
        assert restored.to_json() == registry.to_json()

    def test_restore_rejects_unknown_schema(self):
        with pytest.raises(ExperimentError):
            MetricRegistry.restore({"schema": "nope/9", "metrics": []})

    def test_snapshot_deterministic_across_insertion_order(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.counter("x").inc()
        a.counter("y", lbl="1").inc()
        b.counter("y", lbl="1").inc()
        b.counter("x").inc()
        assert a.to_json() == b.to_json()


# ---------------------------------------------------------------------------
# Emitter
# ---------------------------------------------------------------------------


class TestEmitter:
    def test_emit_and_read_back(self, tmp_path):
        registry = MetricRegistry()
        registry.counter("n").inc()
        path = tmp_path / "trail.jsonl"
        with SnapshotEmitter(registry, path=path) as emitter:
            emitter.emit(phase="warm")
            registry.counter("n").inc()
            emitter.emit(phase="serve")
        records = list(read_snapshots(path))
        assert len(records) == 2
        assert records[0]["phase"] == "warm"
        assert records[1]["telemetry"]["metrics"][0]["value"] == 2
        assert emitter.emitted == 2

    def test_torn_final_line_tolerated(self, tmp_path):
        registry = MetricRegistry()
        path = tmp_path / "trail.jsonl"
        with SnapshotEmitter(registry, path=path) as emitter:
            emitter.emit()
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"t": 1.0, "telemetry"')
        assert len(list(read_snapshots(path))) == 1

    def test_exactly_one_target(self):
        with pytest.raises(ExperimentError):
            SnapshotEmitter(MetricRegistry())
