"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.demand.static import ExplicitDemand, UniformRandomDemand
from repro.sim.engine import Simulator
from repro.topology.graph import Topology
from repro.topology.simple import line, ring, star


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=42)


@pytest.fixture
def triangle() -> Topology:
    """Three fully connected nodes."""
    topo = Topology("triangle")
    for n in range(3):
        topo.add_node(n)
    topo.add_edge(0, 1)
    topo.add_edge(1, 2)
    topo.add_edge(0, 2)
    return topo


@pytest.fixture
def line5() -> Topology:
    """A five-node path 0-1-2-3-4."""
    return line(5)


@pytest.fixture
def ring6() -> Topology:
    """A six-node ring."""
    return ring(6)


@pytest.fixture
def star5() -> Topology:
    """Hub node 0 with four leaves."""
    return star(5)


@pytest.fixture
def slope_demand() -> ExplicitDemand:
    """The paper's §2 demand table on ids 0..4 (A=4 B=6 C=3 D=8 E=7)."""
    return ExplicitDemand({0: 4.0, 1: 6.0, 2: 3.0, 3: 8.0, 4: 7.0})


@pytest.fixture
def uniform_demand() -> UniformRandomDemand:
    """Random static demand in [0, 100]."""
    return UniformRandomDemand(0.0, 100.0, seed=5)
