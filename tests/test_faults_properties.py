"""Property-based hardening tests for the fault subsystem.

Hand-rolled generative testing (no external property-testing deps):
seeded random fault schedules — arbitrary mixes of crashes, churn, link
flaps, partitions and demand shocks — are replayed against live systems
and three invariants are asserted:

1. a message is never delivered to a node while it is down;
2. replicas re-converge after every partition heals (and every crashed
   node recovers);
3. a fault-swept experiment grid is bit-identical on the serial and
   process-pool backends.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.core.system import ReplicationSystem
from repro.core.variants import fast_consistency, weak_consistency
from repro.demand.static import UniformRandomDemand
from repro.experiments.backends import ProcessPoolBackend, SerialBackend
from repro.experiments.plan import ExperimentPlan
from repro.faults import (
    FaultProcess,
    FaultSchedule,
    demand_shock,
    heal,
    join,
    leave,
    link_down,
    link_up,
    node_down,
    node_up,
    partition,
    prepare_demand,
)
from repro.topology.simple import ring

#: Latest time any fault fires; recoveries land strictly before this.
HORIZON = 14.0
#: Generous convergence budget after the last recovery.
MAX_TIME = 400.0


def random_schedule(topo, rng: random.Random) -> FaultSchedule:
    """A random but always-recovering schedule over ``topo``.

    Mixes every event family the subsystem knows; each crash/leave is
    paired with a recovery and each partition with a heal, so the
    re-convergence invariant is well-defined.
    """
    nodes = sorted(topo.nodes)
    edges = sorted((min(a, b), max(a, b)) for a, b, _ in topo.edges())
    events = []
    for _ in range(rng.randint(0, 3)):  # crashes / churn
        victim = rng.choice(nodes)
        start = rng.uniform(0.1, HORIZON - 2.0)
        end = start + rng.uniform(0.2, 2.0)
        if rng.random() < 0.5:
            events += [node_down(start, victim), node_up(end, victim)]
        else:
            events += [leave(start, victim), join(end, victim)]
    for _ in range(rng.randint(0, 3)):  # link flaps
        a, b = rng.choice(edges)
        start = rng.uniform(0.1, HORIZON - 2.0)
        events += [link_down(start, a, b), link_up(start + rng.uniform(0.2, 2.0), a, b)]
    if rng.random() < 0.7:  # one partition window
        cut = rng.randint(1, len(nodes) - 1)
        shuffled = nodes[:]
        rng.shuffle(shuffled)
        start = rng.uniform(0.1, HORIZON - 3.0)
        events += [
            partition(start, (tuple(shuffled[:cut]), tuple(shuffled[cut:]))),
            heal(start + rng.uniform(0.5, 3.0)),
        ]
    if rng.random() < 0.5:  # demand shock
        count = rng.randint(1, max(1, len(nodes) // 3))
        events.append(
            demand_shock(
                rng.uniform(0.1, HORIZON), rng.sample(nodes, count),
                rng.choice([0.0, 0.5, 5.0, 25.0]),
            )
        )
    return FaultSchedule(events=tuple(events), name="random").validate()


def build_faulted_system(seed: int, config) -> Tuple[ReplicationSystem, FaultSchedule]:
    rng = random.Random(seed)
    topo = ring(rng.randint(6, 12))
    schedule = random_schedule(topo, rng)
    demand = prepare_demand(UniformRandomDemand(0.0, 100.0, seed=seed), schedule)
    system = ReplicationSystem(topo, demand, config, seed=seed)
    if schedule.events:
        system.fault_process = FaultProcess(system, schedule)
    return system, schedule


class TestDeliveryInvariant:
    """No handler ever fires for a node that is currently down."""

    @pytest.mark.parametrize("seed", range(8))
    def test_no_delivery_to_down_node(self, seed):
        system, schedule = build_faulted_system(seed, fast_consistency())
        deliveries: List[Tuple[float, int]] = []

        def wrap(node, inner):
            def handler(src, message):
                assert system.network.node_is_up(node), (
                    f"delivery to down node {node} at t={system.sim.now}"
                )
                deliveries.append((system.sim.now, node))
                inner(src, message)

            return handler

        for node in system.topology.nodes:
            system.network.attach(node, wrap(node, system.network.handler_for(node)))

        system.start()
        update = system.inject_write(sorted(system.topology.nodes)[0])
        system.run_until_replicated(update.uid, max_time=MAX_TIME)

        # Cross-check against the schedule: no delivery strictly inside
        # any down interval (boundaries are settled by fault priority).
        intervals = schedule.down_intervals()
        for at, node in deliveries:
            for start, end in intervals.get(node, []):
                assert not (start < at < (end if end is not None else float("inf"))), (
                    f"node {node} got a message at {at} inside down window "
                    f"({start}, {end})"
                )
        assert deliveries, "faulted run delivered nothing at all"


class TestReconvergenceInvariant:
    """Every update reaches every replica once all faults have healed."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("variant", [weak_consistency, fast_consistency])
    def test_replicas_reconverge_after_heal(self, seed, variant):
        system, schedule = build_faulted_system(seed, variant())
        assert schedule.always_recovers()
        system.start()
        update = system.inject_write(sorted(system.topology.nodes)[0])
        done = system.run_until_replicated(update.uid, max_time=MAX_TIME)
        assert done is not None, (
            f"seed {seed}: no convergence despite full recovery "
            f"(schedule: {[ (e.time, e.action) for e in schedule.events ]})"
        )
        assert system.all_have(update.uid)

    @pytest.mark.parametrize("seed", range(4))
    def test_deterministic_replay(self, seed):
        """The same seed must produce the identical faulted trajectory."""

        def run():
            system, _ = build_faulted_system(seed, fast_consistency())
            system.start()
            update = system.inject_write(sorted(system.topology.nodes)[0])
            done = system.run_until_replicated(update.uid, max_time=MAX_TIME)
            return done, system.network.counters.snapshot()

        assert run() == run()


class TestBackendInvariant:
    def test_faulted_grid_bit_identical_across_backends(self):
        plan = ExperimentPlan(
            name="prop",
            topology="line",
            demand="uniform",
            variants=("weak", "fast"),
            faults=("none", "split_brain", "poisson_churn", "flapping_links"),
            n=9,
            reps=2,
            seed=13,
            max_time=300.0,
        )
        serial = plan.run(SerialBackend())
        parallel = plan.run(ProcessPoolBackend(max_workers=2, chunksize=1))
        assert serial.to_dict()["series"] == parallel.to_dict()["series"]
        assert serial.to_dict()["params"] == parallel.to_dict()["params"]
