"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.cdf import EmpiricalCdf
from repro.replica.acks import AckTable
from repro.replica.log import Update, WriteLog
from repro.replica.store import ContentStore
from repro.replica.timestamps import LamportClock, Timestamp
from repro.replica.versions import SummaryVector, elementwise_min
from repro.topology.brite import BriteConfig, barabasi_albert, waxman
from repro.topology.powerlaws import fit_power_law

import math
import random

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

summary_entries = st.dictionaries(
    keys=st.integers(min_value=0, max_value=8),
    values=st.integers(min_value=0, max_value=20),
    max_size=6,
)


def updates_strategy(max_origins=3, max_seq=6):
    """A list of distinct updates, possibly out of order and with gaps."""
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=max_origins - 1),
            st.integers(min_value=1, max_value=max_seq),
        ),
        unique=True,
        max_size=max_origins * max_seq,
    ).map(
        lambda uids: [
            Update(
                origin=o,
                seq=s,
                timestamp=Timestamp(s, o),
                key=f"key{o % 2}",
                value=(o, s),
            )
            for o, s in uids
        ]
    )


# ---------------------------------------------------------------------------
# SummaryVector algebra
# ---------------------------------------------------------------------------


class TestSummaryVectorProperties:
    @given(summary_entries, summary_entries)
    def test_merge_commutative(self, a, b):
        va, vb = SummaryVector(a), SummaryVector(b)
        left = va.copy()
        left.merge(vb)
        right = vb.copy()
        right.merge(va)
        assert left == right

    @given(summary_entries, summary_entries, summary_entries)
    def test_merge_associative(self, a, b, c):
        def merged(*vecs):
            acc = SummaryVector()
            for v in vecs:
                acc.merge(SummaryVector(v))
            return acc

        assert merged(a, b, c) == merged(c, b, a)

    @given(summary_entries)
    def test_merge_idempotent(self, a):
        va = SummaryVector(a)
        vb = va.copy()
        vb.merge(va)
        assert va == vb

    @given(summary_entries, summary_entries)
    def test_merge_result_dominates_inputs(self, a, b):
        va, vb = SummaryVector(a), SummaryVector(b)
        merged = va.copy()
        merged.merge(vb)
        assert merged.dominates(va)
        assert merged.dominates(vb)

    @given(st.lists(summary_entries, min_size=1, max_size=4))
    def test_elementwise_min_dominated_by_all(self, dicts):
        vecs = [SummaryVector(d) for d in dicts]
        ack = elementwise_min(vecs)
        for vec in vecs:
            assert vec.dominates(ack)


# ---------------------------------------------------------------------------
# WriteLog invariants
# ---------------------------------------------------------------------------


class TestWriteLogProperties:
    @given(updates_strategy())
    def test_summary_prefix_is_gapless(self, updates):
        log = WriteLog()
        log.add_all(updates)
        present = {u.uid for u in updates}
        for origin in {u.origin for u in updates}:
            prefix = log.summary.get(origin)
            # Every seq <= prefix was inserted.
            for seq in range(1, prefix + 1):
                assert (origin, seq) in present
            # The next one was not (else the prefix would have advanced).
            assert (origin, prefix + 1) not in present

    @given(updates_strategy())
    def test_insertion_order_does_not_matter(self, updates):
        forward, backward = WriteLog(), WriteLog()
        forward.add_all(updates)
        backward.add_all(list(reversed(updates)))
        assert forward.summary == backward.summary
        assert [u.uid for u in forward.all_updates()] == [
            u.uid for u in backward.all_updates()
        ]

    @given(updates_strategy(), summary_entries)
    def test_updates_since_exactly_complements_peer_summary(self, updates, peer):
        log = WriteLog()
        log.add_all(updates)
        peer_vec = SummaryVector(peer)
        sent = log.updates_since(peer_vec)
        sent_ids = {u.uid for u in sent}
        for u in updates:
            if u.seq > peer_vec.get(u.origin):
                assert u.uid in sent_ids
            else:
                assert u.uid not in sent_ids


# ---------------------------------------------------------------------------
# Store convergence (the heart of weak consistency)
# ---------------------------------------------------------------------------


class TestStoreConvergence:
    @given(updates_strategy(), st.randoms(use_true_random=False))
    def test_lww_store_is_order_independent(self, updates, rng):
        a, b = ContentStore(), ContentStore()
        a.apply_all(updates)
        shuffled = list(updates)
        rng.shuffle(shuffled)
        b.apply_all(shuffled)
        assert a.content_signature() == b.content_signature()

    @given(updates_strategy(), updates_strategy())
    def test_union_of_logs_converges(self, batch_a, batch_b):
        """Two replicas that exchange everything end up identical."""
        # Deduplicate across batches by uid (each uid is one write).
        seen = {}
        for u in batch_a + batch_b:
            seen.setdefault(u.uid, u)
        all_updates = list(seen.values())
        replica_a, replica_b = ContentStore(), ContentStore()
        replica_a.apply_all(batch_a)
        replica_a.apply_all([seen[u.uid] for u in batch_b])
        replica_b.apply_all(batch_b)
        replica_b.apply_all([seen[u.uid] for u in batch_a])
        assert replica_a.content_signature() == replica_b.content_signature()


# ---------------------------------------------------------------------------
# Lamport clocks
# ---------------------------------------------------------------------------


class TestClockProperties:
    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=30))
    def test_local_timestamps_strictly_increase(self, witnessed):
        clock = LamportClock(1)
        last = None
        for counter in witnessed:
            clock.witness(Timestamp(counter, 2))
            ts = clock.tick()
            if last is not None:
                assert ts > last
            last = ts


# ---------------------------------------------------------------------------
# CDF properties
# ---------------------------------------------------------------------------


class TestCdfProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=60,
        )
    )
    def test_cdf_monotone_and_bounded(self, samples):
        cdf = EmpiricalCdf(samples)
        grid = [i * 5.0 for i in range(22)]
        values = cdf.on_grid(grid)
        assert all(0.0 <= v <= 1.0 for v in values)
        assert values == sorted(values)
        assert cdf.evaluate(max(samples)) == 1.0

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=2,
            max_size=60,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_quantile_within_sample_range(self, samples, p):
        cdf = EmpiricalCdf(samples)
        q = cdf.quantile(p)
        assert min(samples) <= q <= max(samples)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    def test_mean_between_min_and_max(self, samples):
        cdf = EmpiricalCdf(samples)
        assert min(samples) - 1e-9 <= cdf.mean() <= max(samples) + 1e-9


# ---------------------------------------------------------------------------
# Topology generator invariants
# ---------------------------------------------------------------------------


class TestGeneratorProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=6, max_value=60),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_ba_always_connected_simple(self, n, m, seed):
        if m >= n:
            m = n - 1
        topo = barabasi_albert(BriteConfig(n=n, m=m), random.Random(seed))
        assert topo.is_connected()
        topo.validate()
        assert topo.num_edges == m * (m + 1) // 2 + m * (n - m - 1)

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=6, max_value=40),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_waxman_always_connected(self, n, seed):
        topo = waxman(BriteConfig(n=n, m=2), random.Random(seed))
        assert topo.is_connected()
        topo.validate()


# ---------------------------------------------------------------------------
# Power-law fit sanity
# ---------------------------------------------------------------------------


class TestFitProperties:
    @given(
        st.floats(min_value=-3.0, max_value=-0.1),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_fit_recovers_exact_laws(self, exponent, scale):
        xs = [1.0, 2.0, 4.0, 8.0, 16.0]
        ys = [scale * x**exponent for x in xs]
        fit = fit_power_law(xs, ys)
        assert math.isclose(fit.exponent, exponent, rel_tol=1e-6, abs_tol=1e-6)
        assert fit.r_squared > 0.999


# ---------------------------------------------------------------------------
# AckTable properties
# ---------------------------------------------------------------------------

observations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),   # observed node
        summary_entries,                          # its summary
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    ),
    max_size=20,
)


class TestAckTableProperties:
    @given(observations)
    def test_ack_vector_dominated_by_every_entry(self, obs):
        table = AckTable(owner=0, population=[0, 1, 2, 3])
        for node, entries, at in obs:
            table.observe(node, SummaryVector(entries), at)
        ack = table.ack_vector()
        for node in (0, 1, 2, 3):
            entry = table.entry(node)
            if entry is not None:
                assert entry.summary.dominates(ack)

    @given(observations)
    def test_knowledge_is_monotone(self, obs):
        table = AckTable(owner=0, population=[0, 1, 2, 3])
        previous_totals = {}
        for node, entries, at in obs:
            table.observe(node, SummaryVector(entries), at)
            entry = table.entry(node)
            total = entry.summary.total_writes()
            assert total >= previous_totals.get(node, 0)
            previous_totals[node] = total

    @given(observations, observations)
    def test_merge_commutative_on_summaries(self, obs_a, obs_b):
        def build(obs):
            table = AckTable(owner=0, population=[0, 1, 2, 3])
            for node, entries, at in obs:
                table.observe(node, SummaryVector(entries), at)
            return table

        ab = build(obs_a)
        ab.merge(build(obs_b))
        ba = build(obs_b)
        ba.merge(build(obs_a))
        for node in (0, 1, 2, 3):
            entry_ab, entry_ba = ab.entry(node), ba.entry(node)
            if entry_ab is None:
                assert entry_ba is None
            else:
                assert entry_ab.summary == entry_ba.summary

    @given(observations)
    def test_incomplete_table_never_purges(self, obs):
        table = AckTable(owner=0, population=[0, 1, 2, 3])
        seen = set()
        for node, entries, at in obs:
            table.observe(node, SummaryVector(entries), at)
            seen.add(node)
        if seen != {0, 1, 2, 3}:
            assert table.ack_vector() == SummaryVector()
