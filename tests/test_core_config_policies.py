"""Tests for protocol config and partner-selection policies."""

from __future__ import annotations

import random

import pytest

from repro.core.config import ProtocolConfig
from repro.core.policies import (
    DemandOrderedPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    WeightedRandomPolicy,
    make_policy,
)
from repro.core.variants import (
    dynamic_fast_consistency,
    fast_consistency,
    high_demand_consistency,
    push_only_consistency,
    static_table_consistency,
    weak_consistency,
)
from repro.demand.static import ExplicitDemand
from repro.demand.views import SnapshotDemandView
from repro.errors import ConfigurationError


class TestProtocolConfig:
    def test_default_validates(self):
        ProtocolConfig().validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"partner_policy": "bogus"},
            {"demand_knowledge": "psychic"},
            {"push_rule": "sideways"},
            {"session_interval_distribution": "cauchy"},
            {"fast_fanout": 0},
            {"session_interval_mean": 0.0},
            {"session_timeout": 0.0},
            {"advert_period": -1.0},
            {"link_delay": -0.1},
            {"link_delay": 2.0},  # must be << session interval
            {"update_payload_bytes": -5},
        ],
    )
    def test_invalid_configs_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(**overrides).validate()

    def test_with_overrides_returns_validated_copy(self):
        base = ProtocolConfig()
        changed = base.with_overrides(fast_update=True, fast_fanout=2)
        assert changed.fast_update and changed.fast_fanout == 2
        assert base.fast_update is False  # frozen original untouched

    def test_describe_mentions_components(self):
        label = fast_consistency().describe()
        assert "demand" in label
        assert "fast" in label


class TestVariants:
    def test_weak_is_random_no_push(self):
        cfg = weak_consistency()
        assert cfg.partner_policy == "random"
        assert cfg.fast_update is False

    def test_high_demand_is_ordered_no_push(self):
        cfg = high_demand_consistency()
        assert cfg.partner_policy == "demand"
        assert cfg.fast_update is False

    def test_fast_has_both_optimisations(self):
        cfg = fast_consistency()
        assert cfg.partner_policy == "demand"
        assert cfg.fast_update is True
        assert cfg.push_rule == "downhill"

    def test_push_only(self):
        cfg = push_only_consistency()
        assert cfg.partner_policy == "random"
        assert cfg.fast_update is True

    def test_dynamic_uses_advertisements(self):
        assert dynamic_fast_consistency().demand_knowledge == "advertised"

    def test_static_table_uses_snapshot(self):
        assert static_table_consistency().demand_knowledge == "snapshot"

    def test_variant_overrides_flow_through(self):
        cfg = weak_consistency(session_interval_mean=2.0)
        assert cfg.session_interval_mean == 2.0


def slope_view():
    model = ExplicitDemand({0: 4.0, 1: 6.0, 2: 3.0, 3: 8.0, 4: 7.0})
    return SnapshotDemandView(model, nodes=range(5))


class TestRandomPolicy:
    def test_selects_from_neighbors(self):
        policy = RandomPolicy(random.Random(0))
        for _ in range(20):
            assert policy.select([1, 2, 3]) in (1, 2, 3)

    def test_empty_neighbors_gives_none(self):
        assert RandomPolicy(random.Random(0)).select([]) is None

    def test_covers_all_neighbors_eventually(self):
        policy = RandomPolicy(random.Random(1))
        seen = {policy.select([1, 2, 3]) for _ in range(100)}
        assert seen == {1, 2, 3}


class TestDemandOrderedPolicy:
    def test_visits_in_decreasing_demand_order(self):
        policy = DemandOrderedPolicy(slope_view())
        # B's neighbours in the §2 example: A(4) C(3) D(8) E(7).
        order = [policy.select([0, 2, 3, 4]) for _ in range(4)]
        assert order == [3, 4, 0, 2]  # D, E, A, C — the paper's best case

    def test_cycle_restarts_after_all_visited(self):
        policy = DemandOrderedPolicy(slope_view())
        first_cycle = [policy.select([0, 2]) for _ in range(2)]
        second_cycle = [policy.select([0, 2]) for _ in range(2)]
        assert first_cycle == second_cycle == [0, 2]

    def test_reranks_remaining_on_demand_change(self):
        # The §4 dynamic behaviour: beliefs shift between selections.
        model = ExplicitDemand({0: 2.0, 2: 0.0, 3: 13.0})
        table = dict(model.table)

        class MutableView(SnapshotDemandView):
            def __init__(self):
                self._table = table

        view = MutableView()
        policy = DemandOrderedPolicy(view)
        assert policy.select([0, 2, 3]) == 3  # D first
        # Demand shifts: A 2->0, C 0->9 (Fig. 4's A' and C').
        table[0] = 0.0
        table[2] = 9.0
        assert policy.select([0, 2, 3]) == 2  # now C'
        assert policy.select([0, 2, 3]) == 0  # A' last

    def test_reset_clears_cycle(self):
        policy = DemandOrderedPolicy(slope_view())
        assert policy.select([0, 2]) == 0
        policy.reset()
        assert policy.select([0, 2]) == 0

    def test_empty_neighbors(self):
        assert DemandOrderedPolicy(slope_view()).select([]) is None


class TestRoundRobinPolicy:
    def test_cycles_in_id_order(self):
        policy = RoundRobinPolicy()
        picks = [policy.select([3, 1, 2]) for _ in range(6)]
        assert picks == [1, 2, 3, 1, 2, 3]

    def test_reset(self):
        policy = RoundRobinPolicy()
        policy.select([1, 2])
        policy.reset()
        assert policy.select([1, 2]) == 1


class TestWeightedRandomPolicy:
    def test_prefers_high_demand(self):
        policy = WeightedRandomPolicy(slope_view(), random.Random(0))
        picks = [policy.select([2, 3]) for _ in range(300)]
        # D (8) should be picked far more often than C (3).
        assert picks.count(3) > picks.count(2)

    def test_zero_demand_still_selectable(self):
        view = SnapshotDemandView(ExplicitDemand({1: 0.0, 2: 0.0}), nodes=[1, 2])
        policy = WeightedRandomPolicy(view, random.Random(0))
        assert {policy.select([1, 2]) for _ in range(50)} == {1, 2}

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            WeightedRandomPolicy(slope_view(), random.Random(0), epsilon=0.0)


class TestMakePolicy:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("random", RandomPolicy),
            ("demand", DemandOrderedPolicy),
            ("round-robin", RoundRobinPolicy),
            ("weighted-random", WeightedRandomPolicy),
        ],
    )
    def test_factory_builds_each(self, name, cls):
        config = ProtocolConfig(partner_policy=name)
        policy = make_policy(config, slope_view(), random.Random(0))
        assert isinstance(policy, cls)
