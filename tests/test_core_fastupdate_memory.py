"""Long-run memory bounding of the fast-update push bookkeeping.

The fast-update agent keeps per-uid state (``_push_depth``, the
per-target ``_offered`` sets) to suppress duplicate offers. Before log
truncation was wired to evict it, that state grew with every write
ever integrated — a slow leak on long horizons. These tests pin the
fix: with ``log_truncation="max-entries"`` the bookkeeping stays
bounded by the live log, while a keep-all run on the same workload
shows the unbounded growth the eviction removes.
"""

from __future__ import annotations

from repro.core.system import ReplicationSystem
from repro.core.variants import fast_consistency
from repro.demand.static import UniformRandomDemand
from repro.topology.brite import internet_like

NODES = 12
WRITES = 150
WRITE_SPACING = 0.2
SETTLE = 20.0
MAX_LOG = 24


def run_workload(config):
    """Drive ``WRITES`` writes from rotating origins over a long horizon."""
    system = ReplicationSystem(
        topology=internet_like(NODES, seed=3),
        demand=UniformRandomDemand(seed=3),
        config=config,
        seed=5,
    )
    system.sim.trace.disable()
    system.start()
    for index in range(WRITES):
        system.run_until(index * WRITE_SPACING)
        system.inject_write(index % NODES)
    system.run_until(WRITES * WRITE_SPACING + SETTLE)
    return system


def test_keep_all_push_state_grows_with_every_write():
    # The contrast case: without truncation the per-uid dicts retain an
    # entry for every write ever integrated, on every node.
    system = run_workload(fast_consistency())
    depths = [len(node.fast._push_depth) for node in system.nodes.values()]
    assert max(depths) == WRITES
    assert min(depths) == WRITES  # full convergence: every node saw all


def test_truncation_bounds_push_state_by_live_log():
    system = run_workload(
        fast_consistency(
            log_truncation="max-entries", max_log_entries=MAX_LOG
        )
    )
    for node in system.nodes.values():
        agent = node.fast
        live = {u.uid for u in node.server.log.all_updates()}
        # Anti-entropy purges at session end, so the settled log obeys
        # the configured bound...
        assert len(live) <= MAX_LOG
        # ...and the push bookkeeping was evicted in lock-step: no
        # entry outlives its log entry, so the dicts are bounded by the
        # live log instead of the write history (WRITES >> MAX_LOG).
        assert set(agent._push_depth) <= live
        for offered in agent._offered.values():
            assert offered <= live


def test_truncated_run_still_converges_every_write():
    # Eviction must be behaviour-neutral: the same workload under
    # aggressive truncation still applies every write everywhere.
    system = run_workload(
        fast_consistency(
            log_truncation="max-entries", max_log_entries=MAX_LOG
        )
    )
    for node in system.nodes.values():
        summary = node.server.log.summary
        applied = sum(
            summary.get(origin) for origin in range(NODES)
        )
        assert applied == WRITES
