"""Shared golden-trace scenarios for the runtime refactor regression test.

The scenarios here exercise every protocol path (weak / fast / advertised
knowledge, loss, acked truncation, client workloads) through the public
:class:`repro.core.system.ReplicationSystem` API only, so the exact same
code runs before and after any internal refactor.  ``scripts`` (or a
one-off shell) regenerates ``tests/data/golden_traces.json`` by calling
:func:`capture_all`; the regression test recomputes each scenario and
compares against the stored fingerprints, proving event traces stayed
bit-identical.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict

from repro.core.system import ReplicationSystem
from repro.core.variants import (
    dynamic_fast_consistency,
    fast_consistency,
    weak_consistency,
)
from repro.demand.static import UniformRandomDemand
from repro.replica.workload import start_workloads
from repro.topology.brite import internet_like
from repro.topology.simple import grid


def fingerprint(system: ReplicationSystem) -> Dict[str, object]:
    """A bit-exact summary of one finished run: trace hash + counters."""
    hasher = hashlib.sha256()
    for rec in system.sim.trace:
        fields = ";".join(f"{k}={v!r}" for k, v in sorted(rec.fields.items()))
        hasher.update(f"{rec.time!r}|{rec.category}|{fields}\n".encode("utf-8"))
    return {
        "trace_sha256": hasher.hexdigest(),
        "trace_records": len(system.sim.trace),
        "events_executed": system.sim.events_executed,
        "now": repr(system.sim.now),
        "counters": system.network.counters.snapshot(),
    }


def _run_fast_oracle() -> ReplicationSystem:
    topo = internet_like(24, seed=3)
    system = ReplicationSystem(
        topology=topo,
        demand=UniformRandomDemand(seed=3),
        config=fast_consistency(),
        seed=5,
    )
    system.start()
    update = system.inject_write(node=0)
    system.run_until_replicated(update.uid, max_time=80.0)
    return system


def _run_weak() -> ReplicationSystem:
    topo = internet_like(24, seed=3)
    system = ReplicationSystem(
        topology=topo,
        demand=UniformRandomDemand(seed=3),
        config=weak_consistency(),
        seed=5,
    )
    system.start()
    update = system.inject_write(node=0)
    system.run_until_replicated(update.uid, max_time=80.0)
    return system


def _run_advertised_lossy() -> ReplicationSystem:
    topo = internet_like(18, seed=7)
    system = ReplicationSystem(
        topology=topo,
        demand=UniformRandomDemand(seed=7),
        config=dynamic_fast_consistency(),
        seed=9,
        loss=0.05,
    )
    system.start()
    system.inject_write(node=0)
    system.sim.schedule(5.0, system.inject_write, 3)
    system.sim.schedule(10.0, system.inject_write, 7)
    system.run_until(40.0)
    return system


def _run_acked_truncation() -> ReplicationSystem:
    topo = grid(4, 4)
    system = ReplicationSystem(
        topology=topo,
        demand=UniformRandomDemand(seed=2),
        config=fast_consistency(log_truncation="acked"),
        seed=11,
    )
    system.start()
    system.inject_write(node=5)
    system.run_until(20.0)
    return system


def _run_with_workload() -> ReplicationSystem:
    topo = internet_like(12, seed=4)
    demand = UniformRandomDemand(seed=4)
    system = ReplicationSystem(
        topology=topo,
        demand=demand,
        config=fast_consistency(),
        seed=6,
    )
    system.start()
    start_workloads(
        system.sim,
        system.servers,
        demand,
        max_rate=10.0,
        write_fraction=0.3,
    )
    system.run_until(15.0)
    return system


SCENARIOS = {
    "fast-oracle": _run_fast_oracle,
    "weak": _run_weak,
    "advertised-lossy": _run_advertised_lossy,
    "acked-truncation": _run_acked_truncation,
    "fast-workload": _run_with_workload,
}


def capture_all() -> Dict[str, Dict[str, object]]:
    """Run every scenario and return its fingerprint, keyed by name."""
    return {name: fingerprint(build()) for name, build in SCENARIOS.items()}


if __name__ == "__main__":
    print(json.dumps(capture_all(), indent=2, sort_keys=True))
