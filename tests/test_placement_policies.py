"""Placement policy unit tests: demand in, copy lists out."""

import pytest

from repro.errors import ConfigurationError
from repro.placement.metrics import (
    capacity_satisfied_series,
    replica_count_series,
)
from repro.placement.policies import (
    EfficiencyFactorPolicy,
    PlacementSetup,
    ThresholdPolicy,
    TopShareDemandPolicy,
    build_policy,
)
from repro.errors import ExperimentError


def setup_with(**overrides):
    return PlacementSetup(**overrides)


class TestPlacementSetup:
    def test_defaults_validate(self):
        assert PlacementSetup().validate() is not None

    def test_static_is_a_valid_regime(self):
        PlacementSetup(policy="static").validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"policy": "bogus"},
            {"capacity": 0.0},
            {"capacity": -1.0},
            {"report_period": 0.0},
            {"cycle_period": -1.0},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"max_copies": 0},
            {"hysteresis": -0.1},
            {"top_share": 0.0},
            {"top_share": 1.2},
            {"min_efficiency": -0.5},
            {"spawn_budget": 0},
            {"donor": "bogus"},
        ],
    )
    def test_bad_knobs_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            setup_with(**overrides).validate()

    def test_build_policy_rejects_static(self):
        with pytest.raises(ConfigurationError, match="static"):
            build_policy(PlacementSetup(policy="static"))

    def test_build_policy_instantiates_named_policy(self):
        assert isinstance(
            build_policy(PlacementSetup(policy="threshold")), ThresholdPolicy
        )
        assert isinstance(
            build_policy(PlacementSetup(policy="top-share")), TopShareDemandPolicy
        )
        assert isinstance(
            build_policy(PlacementSetup(policy="efficiency")), EfficiencyFactorPolicy
        )


class TestThresholdPolicy:
    def test_scale_up_to_cover_demand(self):
        policy = ThresholdPolicy(setup_with(capacity=25.0, max_copies=4))
        targets = policy.targets({0: 60.0, 1: 10.0}, {0: 0, 1: 0})
        # 60 req needs ceil(60/25)=3 replicas -> 2 extras; 10 fits in one.
        assert targets == {0: 2, 1: 0}

    def test_max_copies_caps_target(self):
        policy = ThresholdPolicy(setup_with(capacity=25.0, max_copies=3))
        assert policy.targets({0: 10_000.0}, {0: 0}) == {0: 3}

    def test_hysteresis_holds_borderline_sites(self):
        policy = ThresholdPolicy(
            setup_with(capacity=25.0, hysteresis=0.25, max_copies=4)
        )
        # 1 extra committed; demand 45 needs ceil(45/25)-1 = 1, and even
        # 45*1.25 = 56.25 still needs 2 replicas: hold at 1.
        assert policy.targets({0: 45.0}, {0: 1}) == {0: 1}
        # Demand 22 would justify 0, and 22*1.25 = 27.5 needs ceil=2-1=1:
        # inside the band -> still held.
        assert policy.targets({0: 22.0}, {0: 1}) == {0: 1}
        # Demand 15: 15*1.25 = 18.75 fits one replica -> scale down.
        assert policy.targets({0: 15.0}, {0: 1}) == {0: 0}

    def test_zero_hysteresis_scales_down_immediately(self):
        policy = ThresholdPolicy(setup_with(capacity=25.0, hysteresis=0.0))
        assert policy.targets({0: 20.0}, {0: 2}) == {0: 0}


class TestTopShareDemandPolicy:
    def test_only_top_share_sites_get_copies(self):
        policy = TopShareDemandPolicy(
            setup_with(policy="top-share", capacity=25.0, top_share=0.8)
        )
        observed = {0: 300.0, 1: 60.0, 2: 5.0, 3: 5.0}
        targets = policy.targets(observed, {s: 0 for s in observed})
        # Site 0 alone covers 300/370 = 81% >= 80%: the tail gets zero.
        assert targets[0] == 4  # ceil(300/25)-1 = 11, capped at 4
        assert targets[1] == targets[2] == targets[3] == 0

    def test_covers_prefix_until_share_met(self):
        policy = TopShareDemandPolicy(
            setup_with(policy="top-share", capacity=25.0, top_share=0.9)
        )
        observed = {0: 100.0, 1: 80.0, 2: 20.0}
        targets = policy.targets(observed, {s: 0 for s in observed})
        assert targets == {0: 3, 1: 3, 2: 0}

    def test_all_zero_demand_yields_no_copies(self):
        policy = TopShareDemandPolicy(setup_with(policy="top-share"))
        assert policy.targets({0: 0.0, 1: 0.0}, {0: 0, 1: 0}) == {0: 0, 1: 0}

    def test_ties_rank_by_node_id(self):
        policy = TopShareDemandPolicy(
            setup_with(policy="top-share", capacity=25.0, top_share=0.5)
        )
        observed = {5: 100.0, 2: 100.0}
        targets = policy.targets(observed, {5: 0, 2: 0})
        # Equal demand: the lower id is ranked first and alone covers 50%.
        assert targets == {2: 3, 5: 0}


class TestEfficiencyFactorPolicy:
    def test_spawn_budget_limits_per_cycle_growth(self):
        policy = EfficiencyFactorPolicy(
            setup_with(policy="efficiency", capacity=25.0, spawn_budget=2)
        )
        observed = {0: 200.0, 1: 200.0, 2: 200.0}
        targets = policy.targets(observed, {0: 0, 1: 0, 2: 0})
        assert sum(targets.values()) == 2

    def test_highest_efficiency_spawns_first(self):
        policy = EfficiencyFactorPolicy(
            setup_with(policy="efficiency", capacity=25.0, spawn_budget=1)
        )
        # Site 1's unserved demand (50) saturates a new copy; site 0's
        # (15) would only fill 60% of one.
        targets = policy.targets({0: 40.0, 1: 75.0}, {0: 0, 1: 0})
        assert targets == {0: 0, 1: 1}

    def test_min_efficiency_gates_marginal_copies(self):
        policy = EfficiencyFactorPolicy(
            setup_with(policy="efficiency", capacity=25.0, min_efficiency=0.5)
        )
        # Unserved 10/25 = 0.4 < 0.5: not worth the bootstrap cost.
        assert policy.targets({0: 35.0}, {0: 0}) == {0: 0}

    def test_cold_marginal_copy_retired(self):
        policy = EfficiencyFactorPolicy(
            setup_with(policy="efficiency", capacity=25.0, retire_utilisation=0.3)
        )
        # 2 extras, demand 10: utilisation 10/75 = 0.13 < 0.3.
        assert policy.targets({0: 10.0}, {0: 2}) == {0: 1}

    def test_busy_copies_kept(self):
        policy = EfficiencyFactorPolicy(
            setup_with(policy="efficiency", capacity=25.0, retire_utilisation=0.3)
        )
        assert policy.targets({0: 40.0}, {0: 1}) == {0: 1}


class TestPlacementMetricHelpers:
    def test_capacity_satisfied_series_validates_inputs(self):
        with pytest.raises(ExperimentError):
            capacity_satisfied_series({}, {0: 1.0}, 0, [0], 25.0)
        with pytest.raises(ExperimentError):
            capacity_satisfied_series({}, {0: 1.0}, 3, [0], 0.0)
        with pytest.raises(ExperimentError):
            capacity_satisfied_series({}, {0: 1.0}, 3, [], 25.0)
        with pytest.raises(ExperimentError):
            capacity_satisfied_series(
                {}, {0: 1.0}, 3, [0], 25.0, events=[(0.0, "bogus", 0, 1)]
            )

    def test_static_series_caps_at_capacity(self):
        times = {0: 0.5}
        series = capacity_satisfied_series(times, {0: 100.0}, 3, [0], 25.0)
        assert series == [25.0, 25.0, 25.0]

    def test_consistent_spawn_raises_ceiling(self):
        # Copy 7 spawned for site 0 at t=1 and consistent from t=1.5;
        # from step 2 on the site serves through two replicas.
        times = {0: 0.5, 7: 1.5}
        events = [(1.0, "spawn", 0, 7)]
        series = capacity_satisfied_series(times, {0: 100.0}, 3, [0], 25.0, events)
        assert series == [25.0, 50.0, 50.0]

    def test_retired_copy_stops_serving(self):
        times = {0: 0.5, 7: 1.5}
        events = [(1.0, "spawn", 0, 7), (2.5, "retire", 0, 7)]
        series = capacity_satisfied_series(times, {0: 100.0}, 4, [0], 25.0, events)
        assert series == [25.0, 50.0, 25.0, 25.0]

    def test_inconsistent_spawn_does_not_serve(self):
        # The copy exists but never applied the tracked update.
        times = {0: 0.5}
        events = [(1.0, "spawn", 0, 7)]
        series = capacity_satisfied_series(times, {0: 100.0}, 3, [0], 25.0, events)
        assert series == [25.0, 25.0, 25.0]

    def test_unserved_site_contributes_nothing(self):
        series = capacity_satisfied_series({}, {0: 100.0}, 2, [0], 25.0)
        assert series == [0.0, 0.0]

    def test_replica_count_series_trajectory(self):
        events = [
            (1.0, "spawn", 0, 7),
            (2.0, "spawn", 1, 8),
            (3.5, "retire", 0, 7),
        ]
        assert replica_count_series(events, 5) == [1, 2, 2, 1, 1]

    def test_replica_count_series_validates_horizon(self):
        with pytest.raises(ExperimentError):
            replica_count_series([], 0)
