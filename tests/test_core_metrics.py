"""Tests for evaluation metrics (repro.core.metrics)."""

from __future__ import annotations

import pytest

from repro.core.metrics import (
    ConvergenceTracker,
    TrafficMeter,
    coverage_fraction,
    mean_reach_time,
    reach_time,
    satisfied_requests_series,
)
from repro.core.system import ReplicationSystem
from repro.core.variants import fast_consistency, weak_consistency
from repro.demand.dynamic import FlashCrowdDemand
from repro.demand.static import ConstantDemand, ExplicitDemand
from repro.errors import ExperimentError
from repro.topology.simple import line


class TestReachTime:
    def test_max_over_nodes(self):
        times = {0: 0.0, 1: 2.0, 2: 5.0}
        assert reach_time(times, [0, 1, 2]) == 5.0
        assert reach_time(times, [0, 1]) == 2.0

    def test_t0_offset(self):
        times = {0: 3.0, 1: 4.0}
        assert reach_time(times, [0, 1], t0=3.0) == 1.0

    def test_missing_node_gives_none(self):
        assert reach_time({0: 1.0}, [0, 1]) is None

    def test_mean_reach_time(self):
        times = {0: 0.0, 1: 2.0, 2: 4.0}
        assert mean_reach_time(times, [0, 1, 2]) == 2.0
        assert mean_reach_time({0: 1.0}, [0, 1]) is None
        with pytest.raises(ExperimentError):
            mean_reach_time(times, [])


class TestCoverage:
    def test_fraction_within_deadline(self):
        times = {0: 0.0, 1: 1.0, 2: 5.0}
        assert coverage_fraction(times, [0, 1, 2], at=2.0) == pytest.approx(2 / 3)
        assert coverage_fraction(times, [0, 1, 2], at=10.0) == 1.0

    def test_uncovered_nodes_count_as_missing(self):
        assert coverage_fraction({0: 0.0}, [0, 1], at=99.0) == 0.5

    def test_empty_nodes_raises(self):
        with pytest.raises(ExperimentError):
            coverage_fraction({}, [], at=1.0)


class TestSatisfiedRequests:
    def test_fig3_worst_case_series(self):
        # Paper §2: B-C, B-A, B-E, B-D gives 9, 13, 20, 28.
        demand = {0: 4.0, 1: 6.0, 2: 3.0, 3: 8.0, 4: 7.0}  # A..E
        times = {1: 0.0, 2: 1.0, 0: 2.0, 4: 3.0, 3: 4.0}
        assert satisfied_requests_series(times, demand, 4) == [9.0, 13.0, 20.0, 28.0]

    def test_fig3_optimal_case_series(self):
        # Paper §2: B-D, B-E, B-A, B-C gives 14, 21, 25, 28.
        demand = {0: 4.0, 1: 6.0, 2: 3.0, 3: 8.0, 4: 7.0}
        times = {1: 0.0, 3: 1.0, 4: 2.0, 0: 3.0, 2: 4.0}
        assert satisfied_requests_series(times, demand, 4) == [14.0, 21.0, 25.0, 28.0]

    def test_unreached_nodes_never_count(self):
        assert satisfied_requests_series({0: 0.0}, {0: 2.0, 1: 9.0}, 2) == [2.0, 2.0]

    def test_invalid_horizon(self):
        with pytest.raises(ExperimentError):
            satisfied_requests_series({}, {}, 0)

    def test_model_path_tracks_demand_shifts(self):
        # A flash crowd quintuples node 1's rate over [2, 4); sampled
        # at the end of each step that boosts steps 2 and 3. The series
        # must reflect the rate in force during each step, not a frozen
        # pre-shock snapshot (the pre-fix behaviour).
        model = FlashCrowdDemand(
            ConstantDemand(2.0), hot_nodes=[1], start=2.0, end=4.0, factor=5.0
        )
        times = {0: 0.0, 1: 0.0}
        series = satisfied_requests_series(times, model, 5, nodes=[0, 1])
        assert series == [4.0, 12.0, 12.0, 4.0, 4.0]

    def test_model_path_matches_mapping_for_static_demand(self):
        demand = {0: 4.0, 1: 6.0, 2: 3.0, 3: 8.0, 4: 7.0}
        times = {1: 0.0, 2: 1.0, 0: 2.0, 4: 3.0, 3: 4.0}
        model = ExplicitDemand(demand)
        via_mapping = satisfied_requests_series(times, demand, 4)
        via_model = satisfied_requests_series(
            times, model, 4, nodes=sorted(demand)
        )
        assert via_model == via_mapping

    def test_model_path_requires_nodes(self):
        with pytest.raises(ExperimentError):
            satisfied_requests_series({}, ConstantDemand(1.0), 3)

    def test_mapping_path_with_explicit_nodes_filters(self):
        demand = {0: 2.0, 1: 9.0}
        times = {0: 0.0, 1: 0.0}
        assert satisfied_requests_series(times, demand, 2, nodes=[0]) == [2.0, 2.0]

    def test_t0_offset_applies_to_model_sampling(self):
        # With t0=10, step k samples the model at 10+k.
        model = FlashCrowdDemand(
            ConstantDemand(1.0), hot_nodes=[0], start=11.5, end=12.5, factor=3.0
        )
        times = {0: 10.0}
        series = satisfied_requests_series(times, model, 3, t0=10.0, nodes=[0])
        assert series == [1.0, 3.0, 1.0]


class TestConvergenceTracker:
    def test_tracks_first_application_and_source(self):
        system = ReplicationSystem(
            line(3),
            ExplicitDemand({0: 1.0, 1: 2.0, 2: 4.0}),
            fast_consistency(),
            seed=2,
        )
        tracker = ConvergenceTracker(system.sim)
        system.start()
        update = system.inject_write(0)
        system.run_until_replicated(update.uid, max_time=40.0)
        times = tracker.times(update.uid)
        assert set(times) == {0, 1, 2}
        assert tracker.source_of(update.uid, 0) == "client"
        assert tracker.source_of(update.uid, 1) in ("fast", "session")
        breakdown = tracker.delivery_breakdown(update.uid)
        assert breakdown["client"] == 1
        assert sum(breakdown.values()) == 3

    def test_matches_system_apply_times(self):
        system = ReplicationSystem(
            line(3), ConstantDemand(1.0), weak_consistency(), seed=3
        )
        tracker = ConvergenceTracker(system.sim)
        system.start()
        update = system.inject_write(1)
        system.run_until_replicated(update.uid, max_time=40.0)
        assert tracker.times(update.uid) == system.apply_times(update.uid)


class TestTrafficMeter:
    def test_splits_session_and_fast_traffic(self):
        system = ReplicationSystem(
            line(3),
            ExplicitDemand({0: 1.0, 1: 2.0, 2: 4.0}),
            fast_consistency(),
            seed=4,
        )
        system.start()
        system.inject_write(0)
        system.run_until(5.0)
        report = TrafficMeter(system.network).report()
        assert report.messages_total == (
            report.messages_session + report.messages_fast + report.messages_other
        )
        assert report.bytes_total == (
            report.bytes_session + report.bytes_fast + report.bytes_other
        )
        assert report.messages_fast > 0  # the slope forces pushes
        assert 0.0 < report.fast_byte_overhead < 1.0

    def test_weak_variant_has_zero_fast_traffic(self):
        system = ReplicationSystem(
            line(3), ConstantDemand(1.0), weak_consistency(), seed=4
        )
        system.start()
        system.inject_write(0)
        system.run_until(5.0)
        report = TrafficMeter(system.network).report()
        assert report.messages_fast == 0
        assert report.fast_byte_overhead == 0.0
