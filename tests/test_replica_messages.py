"""Tests for wire messages and size accounting (repro.replica.messages)."""

from __future__ import annotations

from repro.replica.log import Update
from repro.replica.messages import (
    FAST_KINDS,
    HEADER_BYTES,
    OFFER_ENTRY_BYTES,
    REPLY_ENTRY_BYTES,
    SESSION_KINDS,
    FastUpdateOffer,
    FastUpdatePayload,
    FastUpdateReply,
    SessionAbort,
    SessionBusy,
    SessionRequest,
    SummaryMessage,
    UpdateBatch,
    traffic_split,
)
from repro.replica.timestamps import Timestamp
from repro.replica.versions import SummaryVector


def make_update(origin=0, seq=1, payload=50):
    return Update(
        origin=origin,
        seq=seq,
        timestamp=Timestamp(seq, origin),
        key="k",
        value=None,
        payload_bytes=payload,
    )


class TestSizes:
    def test_session_request_is_header_only(self):
        assert SessionRequest(1, 0).size_bytes() == HEADER_BYTES

    def test_busy_is_header_only(self):
        assert SessionBusy(1, 0).size_bytes() == HEADER_BYTES

    def test_summary_message_scales_with_entries(self):
        vec = SummaryVector({1: 2, 2: 3, 3: 4})
        msg = SummaryMessage(1, 0, vec, is_reply=False)
        assert msg.size_bytes() == HEADER_BYTES + 3 * 16

    def test_update_batch_sums_update_sizes(self):
        updates = (make_update(seq=1), make_update(seq=2, payload=10))
        msg = UpdateBatch(1, 0, updates)
        expected = HEADER_BYTES + sum(u.size_bytes() for u in updates)
        assert msg.size_bytes() == expected

    def test_abort_includes_reason(self):
        assert SessionAbort(1, 0, "to").size_bytes() == HEADER_BYTES + 2

    def test_offer_size(self):
        entries = (((0, 1), Timestamp(1, 0)), ((0, 2), Timestamp(2, 0)))
        offer = FastUpdateOffer(0, entries)
        # +1 byte for the cascade-depth counter
        assert offer.size_bytes() == HEADER_BYTES + 1 + 2 * OFFER_ENTRY_BYTES
        assert offer.ids() == ((0, 1), (0, 2))

    def test_reply_size_and_no(self):
        reply = FastUpdateReply(0, ((0, 1),))
        assert reply.size_bytes() == HEADER_BYTES + REPLY_ENTRY_BYTES
        assert not reply.is_no
        assert FastUpdateReply(0, ()).is_no

    def test_payload_size(self):
        msg = FastUpdatePayload(0, (make_update(),))
        assert msg.size_bytes() == HEADER_BYTES + 1 + make_update().size_bytes()

    def test_offer_is_much_smaller_than_payload(self):
        # The §8 claim hinges on offers being cheap relative to bodies.
        update = make_update(payload=256)
        offer = FastUpdateOffer(0, (((0, 1), update.timestamp),))
        payload = FastUpdatePayload(0, (update,))
        assert offer.size_bytes() * 3 < payload.size_bytes()


class TestKindGroups:
    def test_kind_sets_disjoint(self):
        assert not (SESSION_KINDS & FAST_KINDS)

    def test_all_message_kinds_classified(self):
        messages = [
            SessionRequest(1, 0),
            SessionBusy(1, 0),
            SummaryMessage(1, 0, SummaryVector(), False),
            UpdateBatch(1, 0, ()),
            SessionAbort(1, 0),
        ]
        for msg in messages:
            assert msg.kind in SESSION_KINDS
        fast = [
            FastUpdateOffer(0, ()),
            FastUpdateReply(0, ()),
            FastUpdatePayload(0, ()),
        ]
        for msg in fast:
            assert msg.kind in FAST_KINDS

    def test_traffic_split(self):
        split = traffic_split(
            {"summary": 5, "fast-offer": 2, "demand-advert": 3, "update-batch": 1}
        )
        assert split == {"session": 6, "fast": 2, "other": 3}
