"""Tests for the anti-entropy session agent (repro.core.antientropy)."""

from __future__ import annotations

import pytest

from repro.core.system import ReplicationSystem
from repro.core.variants import weak_consistency
from repro.demand.static import ConstantDemand
from repro.topology.simple import line


def two_node_system(**overrides):
    config = weak_consistency(**overrides)
    return ReplicationSystem(
        topology=line(2), demand=ConstantDemand(1.0), config=config, seed=3
    )


class TestSessionExchange:
    def test_session_transfers_updates_both_ways(self):
        system = two_node_system()
        a = system.servers[0].local_write("ka", "va")
        b = system.servers[1].local_write("kb", "vb")
        system.start()
        system.run_until(5.0)
        assert system.servers[0].has_update(b.uid)
        assert system.servers[1].has_update(a.uid)
        assert system.servers[0].is_consistent_with(system.servers[1])

    def test_sessions_complete_and_are_counted(self):
        system = two_node_system()
        system.start()
        system.run_until(10.0)
        stats = system.session_stats_total()
        assert stats["initiated"] > 5
        completed = stats["completed_initiator"]
        assert completed > 0
        assert stats["completed_responder"] == completed

    def test_empty_sessions_still_complete(self):
        # No writes at all: summary vectors are empty, batches are empty,
        # but the session protocol must still terminate cleanly.
        system = two_node_system()
        system.start()
        system.run_until(5.0)
        stats = system.session_stats_total()
        assert stats["completed_initiator"] > 0
        assert stats["timeouts"] == 0
        assert stats["updates_sent"] == 0

    def test_initiation_rate_matches_interval_mean(self):
        system = two_node_system()
        system.start()
        system.run_until(100.0)
        stats = system.session_stats_total()
        # Two nodes, mean one initiation per unit each -> ~200 total.
        assert 140 < stats["initiated"] < 260

    def test_agents_cannot_start_twice(self):
        system = two_node_system()
        system.start()
        from repro.errors import ReplicationError

        with pytest.raises(ReplicationError):
            system.nodes[0].anti_entropy.start()


class TestSessionMessageFlow:
    def test_message_sequence_per_session(self):
        # One completed session = request + 2 summaries + 2 batches.
        system = two_node_system()
        system.start()
        system.run_until(30.0)
        counters = system.network.counters.by_kind
        completed = system.session_stats_total()["completed_initiator"]
        assert counters["session-request"] >= completed
        assert counters["summary"] == 2 * counters["session-request"]
        assert counters["update-batch"] == counters["summary"]

    def test_trace_records_sessions(self):
        system = two_node_system()
        system.start()
        system.run_until(5.0)
        starts = system.sim.trace.select("session.start")
        ends = system.sim.trace.select("session.end")
        assert len(starts) > 0
        assert len(ends) == 2 * system.session_stats_total()["completed_initiator"]


class TestLossTolerance:
    def test_sessions_time_out_under_loss_but_system_converges(self):
        system = ReplicationSystem(
            topology=line(2),
            demand=ConstantDemand(1.0),
            config=weak_consistency(),
            seed=5,
            loss=0.3,
        )
        update = system.servers[0].local_write("k", "v")
        system.start()
        done = system.run_until_replicated(update.uid, max_time=60.0)
        assert done is not None
        assert system.session_stats_total()["timeouts"] > 0

    def test_no_leaked_sessions_after_timeouts(self):
        system = ReplicationSystem(
            topology=line(2),
            demand=ConstantDemand(1.0),
            config=weak_consistency(session_timeout=0.3),
            seed=6,
            loss=0.4,
        )
        system.start()
        system.run_until(40.0)
        for node in system.nodes.values():
            # All sessions either completed or were reaped by timeout;
            # only very recent ones (within the timeout window) may linger.
            assert node.anti_entropy.active_sessions <= 2


class TestBusyRefusal:
    def test_refusals_counted_when_enabled(self):
        system = ReplicationSystem(
            topology=line(3),
            demand=ConstantDemand(1.0),
            config=weak_consistency(refuse_when_busy=True, session_interval_mean=0.2),
            seed=8,
        )
        system.start()
        system.run_until(30.0)
        stats = system.session_stats_total()
        assert stats["refused_sent"] > 0
        assert stats["refused_received"] == stats["refused_sent"]
        # Refused sessions still leave the system functional.
        assert stats["completed_initiator"] > 0

    def test_no_refusals_by_default(self):
        system = two_node_system()
        system.start()
        system.run_until(20.0)
        assert system.session_stats_total()["refused_sent"] == 0
