"""Tests for the campaign execution layer (persistent pools, sinks, resume)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments import backends as backends_module
from repro.experiments.backends import ProcessPoolBackend, SerialBackend
from repro.experiments.campaign import (
    Campaign,
    CampaignPaused,
    CampaignResult,
    scenario_key,
)
from repro.experiments.figures import scaling_experiment, smoke_campaign
from repro.experiments.plan import ExperimentPlan
from repro.experiments.results import TrialResult, VariantSeries
from repro.experiments.sink import JsonLinesSink, sink_status


def small_plan(name="t", **overrides) -> ExperimentPlan:
    defaults = dict(
        name=name,
        topology="ring",
        demand="uniform",
        variants=("weak", "fast"),
        n=8,
        reps=2,
        seed=5,
    )
    defaults.update(overrides)
    return ExperimentPlan(**defaults)


def two_plan_campaign(**overrides) -> Campaign:
    return Campaign(
        "duo",
        {
            "a": small_plan("a", seed=5),
            "b": small_plan("b", topology="line", n=9, seed=7),
        },
        **overrides,
    )


class CountingExecutor(backends_module.ProcessPoolExecutor):
    """ProcessPoolExecutor that counts constructions (pool-spawn audit)."""

    created = 0

    def __init__(self, *args, **kwargs):
        type(self).created += 1
        super().__init__(*args, **kwargs)


@pytest.fixture()
def counting_executor(monkeypatch):
    CountingExecutor.created = 0
    monkeypatch.setattr(backends_module, "ProcessPoolExecutor", CountingExecutor)
    return CountingExecutor


# ---------------------------------------------------------------------------
# Persistent pool lifecycle
# ---------------------------------------------------------------------------


class TestPersistentPool:
    def test_pool_and_worker_pids_reused_across_run_trials(self):
        plan_a, plan_b = small_plan("a"), small_plan("b", seed=9)
        with ProcessPoolBackend(max_workers=2) as backend:
            backend.run_trials(plan_a.scenarios())
            pool_first = backend._pool
            pids_first = set(pool_first._processes)
            backend.run_trials(plan_b.scenarios())
            assert backend._pool is pool_first
            assert set(backend._pool._processes) == pids_first
            assert len(pids_first) == 2
        assert backend._pool is None  # context manager closed it

    def test_close_is_idempotent_and_pool_restarts_lazily(self):
        backend = ProcessPoolBackend(max_workers=2)
        plan = small_plan()
        first = backend.run_trials(plan.scenarios())
        backend.close()
        backend.close()
        assert backend._pool is None
        second = backend.run_trials(plan.scenarios())  # fresh pool, same rows
        assert first == second
        backend.close()

    def test_serial_backend_lifecycle_is_noop(self):
        backend = SerialBackend()
        with backend as entered:
            assert entered is backend
            assert backend.run_trials(small_plan(reps=1).scenarios())
        backend.close()  # still usable afterwards
        assert backend.run_trials(small_plan(reps=1).scenarios())

    def test_two_plan_campaign_spawns_exactly_one_pool(self, counting_executor):
        campaign = two_plan_campaign()
        with ProcessPoolBackend(max_workers=2) as backend:
            outcome = campaign.run(backend)
        assert counting_executor.created == 1
        assert set(outcome.results) == {"a", "b"}

    def test_scaling_experiment_spawns_exactly_one_pool(self, counting_executor):
        with ProcessPoolBackend(max_workers=2) as backend:
            result = scaling_experiment(sizes=(10, 12), reps=1, seed=1, backend=backend)
        assert counting_executor.created == 1
        assert list(result.rows_by_size) == [10, 12]

    def test_cli_scaling_workers_spawns_exactly_one_pool(
        self, counting_executor, capsys
    ):
        from repro.cli import main

        code = main(
            ["scaling", "--reps", "1", "--sizes", "10", "12", "--workers", "2"]
        )
        assert code == 0
        assert counting_executor.created == 1
        assert "diameter" in capsys.readouterr().out

    def test_campaign_closes_backend_it_resolved_itself(self, counting_executor):
        # A spec (int) is resolved inside run() and must not leak a pool.
        outcome = two_plan_campaign().run(backend=2)
        assert counting_executor.created == 1
        assert outcome.notes["backend"] == "process[2]"


# ---------------------------------------------------------------------------
# Streaming execution
# ---------------------------------------------------------------------------


class TestStreaming:
    def test_serial_iter_yields_in_input_order(self):
        specs = small_plan().scenarios()
        indices = [i for i, _ in SerialBackend().run_trials_iter(specs)]
        assert indices == list(range(len(specs)))

    def test_pool_iter_covers_every_index_once_and_matches_lists(self):
        specs = small_plan(topology="ba", n=12).scenarios()
        serial = SerialBackend().run_trials(specs)
        with ProcessPoolBackend(max_workers=2, chunksize=1) as backend:
            streamed = dict(backend.run_trials_iter(specs))
        assert sorted(streamed) == list(range(len(specs)))
        assert [streamed[i] for i in range(len(specs))] == serial

    def test_run_trials_reassembles_stream_in_input_order(self):
        specs = small_plan().scenarios()
        with ProcessPoolBackend(max_workers=2, chunksize=1) as backend:
            assert backend.run_trials(specs) == SerialBackend().run_trials(specs)


# ---------------------------------------------------------------------------
# JSON-lines sink
# ---------------------------------------------------------------------------


def make_trial(rep=0, time_all=3.25) -> TrialResult:
    return TrialResult(
        rep=rep, origin=1, time_all=time_all, time_top=1.5, time_top1=1.0,
        mean_time=2.125, diameter=4, messages=120, bytes_sent=4096, n_nodes=8,
    )


class TestJsonLinesSink:
    def test_record_and_reload_roundtrip_bit_identical(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        trial = make_trial(time_all=3.0000000000000004)  # repr round-trips
        with JsonLinesSink(path) as sink:
            sink.record("p::rep=0/faults=none/variant=weak", trial)
        reloaded = JsonLinesSink(path)
        assert reloaded.get("p::rep=0/faults=none/variant=weak") == trial
        assert len(reloaded) == 1

    def test_duplicate_record_keeps_file_append_only(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        with JsonLinesSink(path) as sink:
            sink.record("k", make_trial())
            sink.record("k", make_trial(rep=9))  # ignored: already recorded
        assert len(path.read_text().splitlines()) == 1
        assert JsonLinesSink(path).get("k").rep == 0

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        with JsonLinesSink(path) as sink:
            sink.record("a", make_trial())
            sink.record("b", make_trial(rep=1))
        first, second = path.read_text().splitlines()
        path.write_text(first + "\n" + second[:20])  # kill mid-write of 'b'
        survivor = JsonLinesSink(path)
        assert "a" in survivor
        assert len(survivor) == 1

    def test_header_written_once_and_mismatch_rejected(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        with JsonLinesSink(path) as sink:
            sink.write_header({"campaign": "x", "total": 4, "plans": {"a": 4}})
            sink.write_header({"campaign": "x", "total": 4, "plans": {"a": 4}})
        assert len(path.read_text().splitlines()) == 1
        reopened = JsonLinesSink(path)
        with pytest.raises(ExperimentError):
            reopened.write_header({"campaign": "y", "total": 4, "plans": {"a": 4}})

    def test_sink_status_reports_counts_by_plan(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        with JsonLinesSink(path) as sink:
            sink.write_header({"campaign": "x", "total": 3, "plans": {"a": 2, "b": 1}})
            sink.record("a::rep=0/faults=none/variant=weak", make_trial())
            sink.record("b::rep=0/faults=none/variant=weak", make_trial())
        header, counts = sink_status(path)
        assert header["campaign"] == "x"
        assert counts == {"a": 1, "b": 1}

    def test_sink_status_missing_file_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            sink_status(tmp_path / "never-started.jsonl")


# ---------------------------------------------------------------------------
# Campaigns
# ---------------------------------------------------------------------------


class TestCampaign:
    def test_construction_rejects_empty_and_duplicate_plans(self):
        with pytest.raises(ExperimentError):
            Campaign("empty", {})
        with pytest.raises(ExperimentError):
            Campaign("dup", [small_plan("same"), small_plan("same", seed=9)])

    def test_sequence_plans_keyed_by_name_and_int_keys_coerced(self):
        by_seq = Campaign("c", [small_plan("a"), small_plan("b")])
        assert list(by_seq.plans) == ["a", "b"]
        by_map = Campaign("c", {25: small_plan("a"), 50: small_plan("b")})
        assert list(by_map.plans) == ["25", "50"]

    def test_scenario_key_prefixes_plan(self):
        spec = small_plan().scenarios()[0]
        assert scenario_key("p1", spec) == "p1::rep=0/faults=none/variant=weak"

    def test_serial_and_pool_campaigns_bit_identical_series(self):
        campaign = smoke_campaign(reps=1, seed=3)
        serial = campaign.run()
        with ProcessPoolBackend(max_workers=2) as backend:
            pooled = campaign.run(backend)
        for key in serial.results:
            assert (
                serial.results[key].to_dict()["series"]
                == pooled.results[key].to_dict()["series"]
            )

    def test_interrupted_then_resumed_is_bit_identical(self, tmp_path):
        # The fault-swept smoke plan exercises the independent per-rep
        # fault seed stream across the interruption boundary.
        campaign = smoke_campaign(reps=2, seed=5)
        uninterrupted = campaign.run()
        path = tmp_path / "cp.jsonl"
        with JsonLinesSink(path) as sink:
            with pytest.raises(CampaignPaused) as excinfo:
                campaign.run(sink=sink, limit=5)
        assert excinfo.value.done == 5
        assert excinfo.value.total == campaign.total_trials()
        with JsonLinesSink(path) as sink:
            resumed = campaign.run(sink=sink)
        assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
            uninterrupted.to_dict(), sort_keys=True
        )

    def test_resume_skips_recorded_scenarios(self, tmp_path, monkeypatch):
        campaign = two_plan_campaign()
        path = tmp_path / "cp.jsonl"
        with JsonLinesSink(path) as sink:
            campaign.run(sink=sink)
        executed = []
        real = backends_module.run_scenario
        monkeypatch.setattr(
            backends_module,
            "run_scenario",
            lambda spec: executed.append(spec) or real(spec),
        )
        with JsonLinesSink(path) as sink:
            rerun = campaign.run(sink=sink)
        assert executed == []
        assert rerun.total_trials() == campaign.total_trials()

    def test_checkpoint_from_other_campaign_rejected(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        with JsonLinesSink(path) as sink:
            two_plan_campaign().run(sink=sink)
        other = Campaign("other", {"a": small_plan("a")})
        with JsonLinesSink(path) as sink:
            with pytest.raises(ExperimentError):
                other.run(sink=sink)

    def test_checkpoint_with_different_seed_rejected(self, tmp_path):
        # Same campaign name and trial counts, different plan seeds: the
        # header fingerprints full plan definitions, so old-seed trials
        # can never be silently spliced into a new-seed run.
        path = tmp_path / "cp.jsonl"
        with JsonLinesSink(path) as sink:
            with pytest.raises(CampaignPaused):
                smoke_campaign(reps=1, seed=3).run(sink=sink, limit=2)
        with JsonLinesSink(path) as sink:
            with pytest.raises(ExperimentError, match="different campaign"):
                smoke_campaign(reps=1, seed=4).run(sink=sink)

    def test_limit_validation(self):
        with pytest.raises(ExperimentError):
            two_plan_campaign().run(limit=0)

    def test_limit_without_sink_rejected(self, tmp_path):
        # Executing trials just to throw them away is never what the
        # caller meant; the guard lives in Campaign.run, not only the CLI.
        with pytest.raises(ExperimentError, match="limit without a sink"):
            two_plan_campaign().run(limit=3)
        with JsonLinesSink(tmp_path / "cp.jsonl") as sink:
            with pytest.raises(CampaignPaused):
                two_plan_campaign().run(sink=sink, limit=3)

    def test_pre_lifecycle_backend_still_supported(self):
        # A third-party backend from before streaming/close existed
        # (name + run_trials only) must pass through resolve_backend and
        # drive a campaign via the run_trials fallback, unclosed.
        from repro.experiments.backends import is_backend, resolve_backend

        class OldBackend:
            name = "old"

            def run_trials(self, scenarios):
                return SerialBackend().run_trials(scenarios)

        backend = OldBackend()
        assert is_backend(backend)
        assert resolve_backend(backend) is backend
        campaign = two_plan_campaign()
        outcome = campaign.run(backend)
        assert outcome.notes["backend"] == "old"
        assert outcome.total_trials() == campaign.total_trials()
        serial = campaign.run()
        for key in serial.results:
            assert (
                serial.results[key].to_dict()["series"]
                == outcome.results[key].to_dict()["series"]
            )

    def test_from_product_builds_cartesian_plans(self):
        base = small_plan("base")
        campaign = Campaign.from_product(
            "prod", base, n=(8, 12), faults=(("none",), ("none", "split_brain")),
        )
        assert len(campaign.plans) == 4
        key = "n=8/faults=none+split_brain"
        assert key in campaign.plans
        assert campaign.plans[key].n == 8
        assert campaign.plans[key].faults == ("none", "split_brain")
        with pytest.raises(ExperimentError):
            Campaign.from_product("prod", base)
        with pytest.raises(ExperimentError):
            Campaign.from_product("prod", base, warp=(1, 2))

    def test_campaign_result_save_load_roundtrip(self, tmp_path):
        outcome = two_plan_campaign().run()
        path = tmp_path / "campaign.json"
        outcome.save(path)
        loaded = CampaignResult.load(path)
        assert loaded.to_dict() == outcome.to_dict()
        assert loaded.total_trials() == outcome.total_trials()


# ---------------------------------------------------------------------------
# Converged fraction (censored means must be visible)
# ---------------------------------------------------------------------------


class TestConvergedFraction:
    def test_fraction_counts_unconverged_trials(self):
        series = VariantSeries(variant="v")
        series.add(make_trial(rep=0, time_all=3.0))
        series.add(make_trial(rep=1, time_all=None))
        series.add(make_trial(rep=2, time_all=5.0))
        assert series.converged_fraction() == pytest.approx(2 / 3)

    def test_fraction_is_one_when_everything_converged(self):
        series = VariantSeries(variant="v")
        series.add(make_trial())
        assert series.converged_fraction() == 1.0

    def test_empty_series_raises(self):
        with pytest.raises(ExperimentError):
            VariantSeries(variant="v").converged_fraction()
