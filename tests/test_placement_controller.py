"""Placement controller integration tests: the closed loop end to end."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.system import ReplicationSystem
from repro.demand.dynamic import FlashCrowdDemand
from repro.demand.static import ConstantDemand, UniformRandomDemand
from repro.errors import ConfigurationError
from repro.experiments.harness import TrialSpec, run_trial
from repro.experiments.plan import ExperimentPlan, ScenarioSpec, series_label
from repro.experiments.scenarios import PLACEMENTS, build_placement
from repro.placement import (
    PlacementController,
    PlacementSetup,
    placement_traffic,
    replica_count_series,
)
from repro.topology.simple import grid

HOT = [5, 10]


def flash_system(seed=42, factor=12.0):
    topo = grid(4, 4)
    demand = FlashCrowdDemand(
        UniformRandomDemand(2.0, 10.0, seed=7),
        hot_nodes=HOT,
        start=10.0,
        end=45.0,
        factor=factor,
    )
    return ReplicationSystem(topo, demand, ProtocolConfig(), seed=seed)


def run_controlled(system, setup, home=0, until=80.0):
    controller = PlacementController(system, setup, home=home)
    system.start()
    controller.start()
    update = system.inject_write(home)
    system.run_until_replicated(update.uid, max_time=until)
    if system.sim.now < until:
        system.run_until(until)
    return controller, update


class TestControlLoop:
    def test_flash_crowd_scales_up_then_down(self):
        system = flash_system()
        controller, _ = run_controlled(system, PlacementSetup(capacity=25.0))
        assert controller.spawned_total > 0
        assert controller.retired_total == controller.spawned_total
        assert controller.total_copies() == 0  # back to baseline
        spawn_times = [t for t, k, _, _ in controller.events if k == "spawn"]
        retire_times = [t for t, k, _, _ in controller.events if k == "retire"]
        # Scale-up happens inside the [10, 45) flash window (plus one
        # observation cycle); scale-down after it closes.
        assert all(10.0 <= t < 50.0 for t in spawn_times)
        assert all(t >= 45.0 for t in retire_times)
        # Only the hot sites got copies.
        assert {site for _, k, site, _ in controller.events if k == "spawn"} == set(
            HOT
        )

    def test_trajectory_rises_and_falls(self):
        system = flash_system()
        controller, _ = run_controlled(system, PlacementSetup(capacity=25.0))
        trajectory = replica_count_series(controller.events, 80)
        assert max(trajectory) == controller.peak_copies > 0
        assert trajectory[0] == 0 and trajectory[-1] == 0

    def test_control_traffic_is_metered(self):
        system = flash_system()
        controller, _ = run_controlled(system, PlacementSetup(capacity=25.0))
        traffic = placement_traffic(system.network)
        # Sent >= received: a report can still be in flight at cutoff.
        assert traffic.report_messages >= controller.reports_received > 0
        assert traffic.command_messages >= controller.commands_sent > 0
        assert traffic.report_bytes == 28 * traffic.report_messages
        assert traffic.bytes > 0
        # Placement kinds land in the shared counters too.
        assert system.network.counters.by_kind["placement-report"] > 0

    def test_spawned_replicas_bootstrap_and_converge(self):
        system = flash_system()
        setup = PlacementSetup(capacity=25.0)
        controller, update = run_controlled(system, setup)
        spawned = [r for _, k, _, r in controller.events if k == "spawn"]
        times = system.apply_times(update.uid)
        # Every spawned copy absorbed the tracked write via anti-entropy.
        assert all(r in times for r in spawned)
        # And was later retired properly.
        assert set(spawned) <= system.retired
        assert all(r not in system.active_nodes for r in spawned)

    def test_runs_are_deterministic(self):
        def events_of():
            system = flash_system()
            controller, _ = run_controlled(system, PlacementSetup(capacity=25.0))
            return controller.events, system.network.counters.snapshot()

        first = events_of()
        second = events_of()
        assert first == second

    def test_steady_demand_never_spawns(self):
        topo = grid(3, 3)
        system = ReplicationSystem(
            topo, ConstantDemand(5.0), ProtocolConfig(), seed=1
        )
        controller, _ = run_controlled(
            system, PlacementSetup(capacity=25.0), until=40.0
        )
        assert controller.spawned_total == 0
        assert controller.cycles_run > 0

    def test_unknown_home_rejected(self):
        system = flash_system()
        with pytest.raises(ConfigurationError, match="home"):
            PlacementController(system, PlacementSetup(), home=99)

    def test_double_start_rejected(self):
        system = flash_system()
        controller = PlacementController(system, PlacementSetup(), home=0)
        system.start()
        controller.start()
        with pytest.raises(ConfigurationError, match="started"):
            controller.start()


class TestHarnessIntegration:
    def _spec(self, placement):
        topo = grid(4, 4)
        demand = FlashCrowdDemand(
            UniformRandomDemand(2.0, 10.0, seed=7),
            hot_nodes=HOT,
            start=10.0,
            end=45.0,
            factor=12.0,
        )
        return TrialSpec(
            topology=topo,
            demand=demand,
            config=ProtocolConfig(),
            seed=11,
            origin=0,
            max_time=80.0,
            placement=placement,
        )

    def test_autoscaler_beats_static_on_satisfaction(self):
        static, _ = run_trial(self._spec(PlacementSetup(policy="static")))
        auto, _ = run_trial(self._spec(PlacementSetup(policy="threshold")))
        assert static.satisfied_area is not None
        assert auto.satisfied_area > static.satisfied_area
        assert static.replicas_spawned == 0 and static.placement_bytes == 0
        assert auto.replicas_spawned > 0 and auto.placement_bytes > 0
        assert auto.replicas_peak >= 1

    def test_placement_free_trials_record_nothing(self):
        trial, _ = run_trial(self._spec(None))
        assert trial.satisfied_area is None
        assert trial.replicas_spawned is None
        assert trial.placement_bytes is None

    def test_base_metrics_ignore_spawned_copies(self):
        # n_nodes and diameter describe the base topology even though
        # the controller grows the graph during the run.
        trial, _ = run_trial(self._spec(PlacementSetup(policy="threshold")))
        assert trial.n_nodes == 16
        assert trial.diameter == 6


class TestPlanAxis:
    def test_series_label_suffixes(self):
        assert series_label("fast", "none") == "fast"
        assert series_label("fast", "none", "threshold") == "fast+threshold"
        assert (
            series_label("fast", "split_brain", "static")
            == "fast@split_brain+static"
        )

    def test_scenario_key_back_compat(self):
        spec = ScenarioSpec(
            experiment="e", rep=3, variant="fast", topology="grid",
            demand="uniform", n=16, topo_seed=1, demand_seed=2, sim_seed=3,
            origin_seed=4,
        )
        assert spec.key() == "rep=3/faults=none/variant=fast"
        placed = ScenarioSpec(
            experiment="e", rep=3, variant="fast", topology="grid",
            demand="uniform", n=16, topo_seed=1, demand_seed=2, sim_seed=3,
            origin_seed=4, placement="threshold",
        )
        assert placed.key() == "rep=3/faults=none/variant=fast/placement=threshold"

    def test_plan_expands_placements_axis(self):
        plan = ExperimentPlan(
            name="p", topology="grid", demand="flash-crowd",
            variants=("fast",), placements=("static", "threshold"),
            n=16, reps=2, seed=3,
        )
        assert plan.total_trials() == 4
        assert plan.series_labels() == ("fast+static", "fast+threshold")
        placements = [s.placement for s in plan.scenarios()]
        assert placements == ["static", "threshold", "static", "threshold"]

    def test_plan_validates_placement_keys(self):
        from repro.errors import ExperimentError

        plan = ExperimentPlan(name="p", placements=("bogus",))
        with pytest.raises(ExperimentError, match="placement"):
            plan.validate()

    def test_registry_builds_every_regime(self):
        for name in PLACEMENTS:
            setup = build_placement(name)
            if name == "none":
                assert setup is None
            else:
                assert setup.validate() is not None

    def test_placement_sweep_serial_equals_process(self):
        from repro.experiments.backends import ProcessPoolBackend, SerialBackend

        plan = ExperimentPlan(
            name="p", topology="grid", demand="flash-crowd",
            variants=("fast",), placements=("static", "threshold"),
            n=16, reps=2, seed=3,
        )
        serial = plan.run(SerialBackend())
        with ProcessPoolBackend(max_workers=2) as pool:
            parallel = plan.run(pool)
        for label in serial.series:
            assert (
                serial.series[label].trials == parallel.series[label].trials
            ), label
        auto = serial.series["fast+threshold"].mean_satisfied_area()
        static = serial.series["fast+static"].mean_satisfied_area()
        assert auto > static
