"""Placement controller integration tests: the closed loop end to end."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.system import ReplicationSystem
from repro.demand.dynamic import FlashCrowdDemand
from repro.demand.static import ConstantDemand, UniformRandomDemand
from repro.errors import ConfigurationError
from repro.experiments.harness import TrialSpec, run_trial
from repro.experiments.plan import ExperimentPlan, ScenarioSpec, series_label
from repro.experiments.scenarios import PLACEMENTS, build_placement
from repro.placement import (
    DemandReport,
    PlacementAck,
    PlacementCommand,
    PlacementController,
    PlacementSetup,
    placement_traffic,
    replica_count_series,
)
from repro.topology.simple import grid

HOT = [5, 10]


def flash_system(seed=42, factor=12.0):
    topo = grid(4, 4)
    demand = FlashCrowdDemand(
        UniformRandomDemand(2.0, 10.0, seed=7),
        hot_nodes=HOT,
        start=10.0,
        end=45.0,
        factor=factor,
    )
    return ReplicationSystem(topo, demand, ProtocolConfig(), seed=seed)


def run_controlled(system, setup, home=0, until=80.0):
    controller = PlacementController(system, setup, home=home)
    system.start()
    controller.start()
    update = system.inject_write(home)
    system.run_until_replicated(update.uid, max_time=until)
    if system.sim.now < until:
        system.run_until(until)
    return controller, update


class TestControlLoop:
    def test_flash_crowd_scales_up_then_down(self):
        system = flash_system()
        controller, _ = run_controlled(system, PlacementSetup(capacity=25.0))
        assert controller.spawned_total > 0
        assert controller.retired_total == controller.spawned_total
        assert controller.total_copies() == 0  # back to baseline
        spawn_times = [t for t, k, _, _ in controller.events if k == "spawn"]
        retire_times = [t for t, k, _, _ in controller.events if k == "retire"]
        # Scale-up happens inside the [10, 45) flash window (plus one
        # observation cycle); scale-down after it closes.
        assert all(10.0 <= t < 50.0 for t in spawn_times)
        assert all(t >= 45.0 for t in retire_times)
        # Only the hot sites got copies.
        assert {site for _, k, site, _ in controller.events if k == "spawn"} == set(
            HOT
        )

    def test_trajectory_rises_and_falls(self):
        system = flash_system()
        controller, _ = run_controlled(system, PlacementSetup(capacity=25.0))
        trajectory = replica_count_series(controller.events, 80)
        assert max(trajectory) == controller.peak_copies > 0
        assert trajectory[0] == 0 and trajectory[-1] == 0

    def test_control_traffic_is_metered(self):
        system = flash_system()
        controller, _ = run_controlled(system, PlacementSetup(capacity=25.0))
        traffic = placement_traffic(system.network)
        # Sent >= received: a report can still be in flight at cutoff.
        assert traffic.report_messages >= controller.reports_received > 0
        assert traffic.command_messages >= controller.commands_sent > 0
        assert traffic.report_bytes == 28 * traffic.report_messages
        assert traffic.bytes > 0
        # Placement kinds land in the shared counters too.
        assert system.network.counters.by_kind["placement-report"] > 0

    def test_spawned_replicas_bootstrap_and_converge(self):
        system = flash_system()
        setup = PlacementSetup(capacity=25.0)
        controller, update = run_controlled(system, setup)
        spawned = [r for _, k, _, r in controller.events if k == "spawn"]
        times = system.apply_times(update.uid)
        # Every spawned copy absorbed the tracked write via anti-entropy.
        assert all(r in times for r in spawned)
        # And was later retired properly.
        assert set(spawned) <= system.retired
        assert all(r not in system.active_nodes for r in spawned)

    def test_runs_are_deterministic(self):
        def events_of():
            system = flash_system()
            controller, _ = run_controlled(system, PlacementSetup(capacity=25.0))
            return controller.events, system.network.counters.snapshot()

        first = events_of()
        second = events_of()
        assert first == second

    def test_steady_demand_never_spawns(self):
        topo = grid(3, 3)
        system = ReplicationSystem(
            topo, ConstantDemand(5.0), ProtocolConfig(), seed=1
        )
        controller, _ = run_controlled(
            system, PlacementSetup(capacity=25.0), until=40.0
        )
        assert controller.spawned_total == 0
        assert controller.cycles_run > 0

    def test_unknown_home_rejected(self):
        system = flash_system()
        with pytest.raises(ConfigurationError, match="home"):
            PlacementController(system, PlacementSetup(), home=99)

    def test_double_start_rejected(self):
        system = flash_system()
        controller = PlacementController(system, PlacementSetup(), home=0)
        system.start()
        controller.start()
        with pytest.raises(ConfigurationError, match="started"):
            controller.start()


class TestHarnessIntegration:
    def _spec(self, placement):
        topo = grid(4, 4)
        demand = FlashCrowdDemand(
            UniformRandomDemand(2.0, 10.0, seed=7),
            hot_nodes=HOT,
            start=10.0,
            end=45.0,
            factor=12.0,
        )
        return TrialSpec(
            topology=topo,
            demand=demand,
            config=ProtocolConfig(),
            seed=11,
            origin=0,
            max_time=80.0,
            placement=placement,
        )

    def test_autoscaler_beats_static_on_satisfaction(self):
        static, _ = run_trial(self._spec(PlacementSetup(policy="static")))
        auto, _ = run_trial(self._spec(PlacementSetup(policy="threshold")))
        assert static.satisfied_area is not None
        assert auto.satisfied_area > static.satisfied_area
        assert static.replicas_spawned == 0 and static.placement_bytes == 0
        assert auto.replicas_spawned > 0 and auto.placement_bytes > 0
        assert auto.replicas_peak >= 1

    def test_placement_free_trials_record_nothing(self):
        trial, _ = run_trial(self._spec(None))
        assert trial.satisfied_area is None
        assert trial.replicas_spawned is None
        assert trial.placement_bytes is None

    def test_base_metrics_ignore_spawned_copies(self):
        # n_nodes and diameter describe the base topology even though
        # the controller grows the graph during the run.
        trial, _ = run_trial(self._spec(PlacementSetup(policy="threshold")))
        assert trial.n_nodes == 16
        assert trial.diameter == 6


class TestPlanAxis:
    def test_series_label_suffixes(self):
        assert series_label("fast", "none") == "fast"
        assert series_label("fast", "none", "threshold") == "fast+threshold"
        assert (
            series_label("fast", "split_brain", "static")
            == "fast@split_brain+static"
        )

    def test_scenario_key_back_compat(self):
        spec = ScenarioSpec(
            experiment="e", rep=3, variant="fast", topology="grid",
            demand="uniform", n=16, topo_seed=1, demand_seed=2, sim_seed=3,
            origin_seed=4,
        )
        assert spec.key() == "rep=3/faults=none/variant=fast"
        placed = ScenarioSpec(
            experiment="e", rep=3, variant="fast", topology="grid",
            demand="uniform", n=16, topo_seed=1, demand_seed=2, sim_seed=3,
            origin_seed=4, placement="threshold",
        )
        assert placed.key() == "rep=3/faults=none/variant=fast/placement=threshold"

    def test_plan_expands_placements_axis(self):
        plan = ExperimentPlan(
            name="p", topology="grid", demand="flash-crowd",
            variants=("fast",), placements=("static", "threshold"),
            n=16, reps=2, seed=3,
        )
        assert plan.total_trials() == 4
        assert plan.series_labels() == ("fast+static", "fast+threshold")
        placements = [s.placement for s in plan.scenarios()]
        assert placements == ["static", "threshold", "static", "threshold"]

    def test_plan_validates_placement_keys(self):
        from repro.errors import ExperimentError

        plan = ExperimentPlan(name="p", placements=("bogus",))
        with pytest.raises(ExperimentError, match="placement"):
            plan.validate()

    def test_registry_builds_every_regime(self):
        for name in PLACEMENTS:
            setup = build_placement(name)
            if name == "none":
                assert setup is None
            else:
                assert setup.validate() is not None

    def test_placement_sweep_serial_equals_process(self):
        from repro.experiments.backends import ProcessPoolBackend, SerialBackend

        plan = ExperimentPlan(
            name="p", topology="grid", demand="flash-crowd",
            variants=("fast",), placements=("static", "threshold"),
            n=16, reps=2, seed=3,
        )
        serial = plan.run(SerialBackend())
        with ProcessPoolBackend(max_workers=2) as pool:
            parallel = plan.run(pool)
        for label in serial.series:
            assert (
                serial.series[label].trials == parallel.series[label].trials
            ), label
        auto = serial.series["fast+threshold"].mean_satisfied_area()
        static = serial.series["fast+static"].mean_satisfied_area()
        assert auto > static


class TestControlPlaneHardening:
    """Seq numbers, idempotent commands, retries, crash checkpoints."""

    def steady_controlled(self, seed=1):
        topo = grid(3, 3)
        system = ReplicationSystem(
            topo, ConstantDemand(5.0), ProtocolConfig(), seed=seed
        )
        controller = PlacementController(
            system, PlacementSetup(capacity=25.0), home=0
        )
        system.start()
        controller.start()
        return system, controller

    def test_seq_costs_no_metered_bytes(self):
        # The seq rides the framing header: adding it must not perturb
        # any byte-overhead result from the pre-hardening control plane.
        assert (
            DemandReport(1, 2.0, seq=9).size_bytes()
            == DemandReport(1, 2.0).size_bytes()
            == 28
        )
        assert (
            PlacementCommand(1, 2, seq=9).size_bytes()
            == PlacementCommand(1, 2).size_bytes()
        )
        assert PlacementAck(1, seq=9).size_bytes() == 28

    def test_stale_report_dropped(self):
        system, controller = self.steady_controlled()
        controller._handle_report(5, DemandReport(5, 10.0, seq=3))
        believed = controller.table.believed(5)
        # An older (reordered/duplicated) report must not roll back.
        controller._handle_report(5, DemandReport(5, 99.0, seq=2))
        assert controller.reports_stale == 1
        assert controller.table.believed(5) == believed
        controller._handle_report(5, DemandReport(5, 50.0, seq=4))
        assert controller.reports_received == 2
        assert controller.table.believed(5) == 50.0

    def test_duplicate_command_applied_once_but_reacked(self):
        system, controller = self.steady_controlled()
        command = PlacementCommand(4, 1, seq=1)
        controller._handle_command(0, command)
        spawned_after_first = controller.spawned_total
        assert spawned_after_first == 1
        # The duplicate re-acks without re-executing.
        controller._handle_command(0, command)
        assert controller.spawned_total == spawned_after_first
        assert system.network.counters.by_kind[PlacementAck.kind] == 2

    def test_unacked_command_retried_then_lands_after_recovery(self):
        system, controller = self.steady_controlled()
        site = 4
        period = controller.setup.cycle_period
        system.network.set_node_down(site)
        controller._send_command(site, 1)
        assert controller._outstanding[site] == 1
        assert controller.commands_sent == 1
        # The command (and every retry) is eaten by the crashed site;
        # the backoff chain must fire at least once.
        system.run_until(system.sim.now + period * 1.6)
        assert controller.commands_retried >= 1
        # Once the site recovers, a pending retry lands, the site
        # spawns, and the ack clears the outstanding slot.
        system.network.set_node_up(site)
        system.run_until(system.sim.now + period * 16)
        # The retried command landed and was acked; the next organic
        # cycle then retires the now-unneeded copy with a fresh seq.
        assert controller._site_applied_seq.get(site, 0) >= 1
        assert controller.acks_received >= 1
        assert site not in controller._outstanding
        assert controller.spawned_total == 1

    def test_retries_give_up_after_max_attempts(self):
        from repro.placement.controller import COMMAND_MAX_RETRIES

        system, controller = self.steady_controlled()
        site = 4
        system.network.set_node_down(site)
        controller._send_command(site, 1)
        system.run_until(system.sim.now + controller.setup.cycle_period * 64)
        assert controller.commands_retried == COMMAND_MAX_RETRIES
        assert controller.spawned_total == 0

    def test_crash_wipes_volatile_state_and_checkpoint_restores(self):
        system, controller = self.steady_controlled()
        period = controller.setup.cycle_period
        system.run_until(period * 4.5)
        assert controller.cycles_run >= 3
        checkpointed = dict(controller._checkpoint["popularity"])
        assert checkpointed
        # Crash the home: the next cycle notices, loses the volatile
        # state, and runs nothing until recovery.
        system.network.set_node_down(controller.home)
        cycles_before = controller.cycles_run
        system.run_until(system.sim.now + period * 3)
        assert controller.crashes == 1
        assert controller.popularity == {}
        assert controller.cycles_run == cycles_before
        # Recovery: the first healthy cycle restores the checkpoint
        # instead of relearning from scratch.
        system.network.set_node_up(controller.home)
        system.run_until(system.sim.now + period * 2)
        assert controller.restores == 1
        assert controller.cycles_run > cycles_before
        assert set(controller.popularity) >= set(checkpointed)

    def test_restore_advances_cmd_seq_past_site_applied(self):
        system, controller = self.steady_controlled()
        # Modelled status round: commands issued post-checkpoint were
        # applied (seq 7) before the crash; the restored counter must
        # move past them or fresh commands would be dropped as stale.
        controller._site_applied_seq[5] = 7
        controller._checkpoint = {
            "popularity": {},
            "last_report_seq": {},
            "cmd_seq": {5: 3},
        }
        controller._restore_checkpoint()
        assert controller._cmd_seq[5] == 7

    def test_crash_and_recovery_mid_flash_crowd_still_scales(self):
        # End-to-end: home crashes inside the flash window, recovers,
        # and the loop still spawns copies for the hot sites.
        system = flash_system()
        controller = PlacementController(
            system, PlacementSetup(capacity=25.0), home=0
        )
        system.start()
        controller.start()
        system.run_until(15.0)
        system.network.set_node_down(0)
        system.run_until(22.0)
        system.network.set_node_up(0)
        system.run_until(80.0)
        assert controller.crashes == 1
        assert controller.restores == 1
        assert controller.spawned_total > 0
        assert {s for _, k, s, _ in controller.events if k == "spawn"} <= set(
            HOT
        )
