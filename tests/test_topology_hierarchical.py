"""Tests for the two-tier hierarchical topology generator."""

from __future__ import annotations

import random

import pytest

from repro.errors import TopologyError
from repro.topology.hierarchical import (
    HierarchicalConfig,
    as_members,
    as_of,
    hierarchical,
)


class TestConfig:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"autonomous_systems": 1},
            {"routers_per_as": 1},
            {"as_model": "smallworld"},
            {"border_links": 0},
            {"as_m": 0},
            {"autonomous_systems": 3, "as_m": 3},
            {"routers_per_as": 4, "router_m": 4},
        ],
    )
    def test_invalid_configs_rejected(self, overrides):
        with pytest.raises(TopologyError):
            HierarchicalConfig(**overrides).validate()


class TestGeneration:
    def test_node_count_and_connectivity(self):
        config = HierarchicalConfig(autonomous_systems=4, routers_per_as=10)
        topo = hierarchical(config, seed=1)
        assert topo.num_nodes == 40
        assert topo.is_connected()
        topo.validate()

    def test_determinism(self):
        config = HierarchicalConfig(autonomous_systems=3, routers_per_as=8)
        a = hierarchical(config, seed=5)
        b = hierarchical(config, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_keyword_overrides(self):
        topo = hierarchical(seed=2, autonomous_systems=3, routers_per_as=6)
        assert topo.num_nodes == 18

    def test_config_and_overrides_conflict(self):
        with pytest.raises(TopologyError):
            hierarchical(HierarchicalConfig(), autonomous_systems=3)

    def test_intra_as_edges_denser_than_inter(self):
        config = HierarchicalConfig(
            autonomous_systems=4, routers_per_as=10, border_links=1
        )
        topo = hierarchical(config, seed=3)
        intra = inter = 0
        for a, b, _ in topo.edges():
            if as_of(a, config) == as_of(b, config):
                intra += 1
            else:
                inter += 1
        assert intra > inter
        # Inter-AS links exist for every AS edge (>= as-graph edge count).
        assert inter >= 3  # BA over 4 nodes with m=2 has >= 3 edges

    def test_waxman_tiers(self):
        config = HierarchicalConfig(
            autonomous_systems=3,
            routers_per_as=8,
            as_model="waxman",
            router_model="waxman",
        )
        topo = hierarchical(config, seed=4)
        assert topo.is_connected()

    def test_positions_within_plane(self):
        config = HierarchicalConfig(
            autonomous_systems=4, routers_per_as=6, plane_size=100.0
        )
        topo = hierarchical(config, seed=5)
        for node in topo.nodes:
            x, y = topo.position(node)
            assert 0 <= x <= 100
            assert 0 <= y <= 100

    def test_as_cells_separate_positions(self):
        config = HierarchicalConfig(
            autonomous_systems=4, routers_per_as=6, plane_size=100.0
        )
        topo = hierarchical(config, seed=6)
        # Routers of AS 0 live in the first cell (x < 50, y < 50).
        for node in as_members(0, config):
            x, y = topo.position(node)
            assert x < 50 and y < 50


class TestHelpers:
    def test_as_of(self):
        config = HierarchicalConfig(autonomous_systems=3, routers_per_as=10)
        assert as_of(0, config) == 0
        assert as_of(9, config) == 0
        assert as_of(10, config) == 1
        with pytest.raises(TopologyError):
            as_of(-1, config)

    def test_as_members(self):
        config = HierarchicalConfig(autonomous_systems=3, routers_per_as=4)
        assert as_members(1, config) == [4, 5, 6, 7]
        with pytest.raises(TopologyError):
            as_members(9, config)

    def test_system_runs_on_hierarchical_topology(self):
        from repro import ReplicationSystem, fast_consistency
        from repro.demand import UniformRandomDemand

        topo = hierarchical(
            HierarchicalConfig(autonomous_systems=3, routers_per_as=8), seed=7
        )
        system = ReplicationSystem(
            topo, UniformRandomDemand(seed=7), fast_consistency(), seed=7
        )
        system.start()
        update = system.inject_write(0)
        assert system.run_until_replicated(update.uid, max_time=80.0) is not None
