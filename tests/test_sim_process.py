"""Tests for generator-based processes (repro.sim.process)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.process import Interrupted, Process, Signal


class TestBasicExecution:
    def test_periodic_ticks(self, sim):
        ticks = []

        def clock():
            while True:
                yield 1.0
                ticks.append(sim.now)

        Process(sim, clock(), name="clock")
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_process_result_and_finished_at(self, sim):
        def worker():
            yield 2.0
            return "done"

        proc = Process(sim, worker())
        sim.run()
        assert proc.result == "done"
        assert proc.alive is False
        assert proc.finished_at == 2.0

    def test_process_starts_at_current_time(self, sim):
        seen = []

        def worker():
            seen.append(sim.now)
            yield 1.0
            seen.append(sim.now)

        sim.schedule(5.0, lambda: Process(sim, worker()))
        sim.run()
        assert seen == [5.0, 6.0]

    def test_creation_order_decides_same_time_interleaving(self, sim):
        order = []

        def worker(tag):
            order.append(tag)
            yield 0.0

        Process(sim, worker("a"))
        Process(sim, worker("b"))
        sim.run()
        assert order == ["a", "b"]

    def test_non_generator_rejected(self, sim):
        with pytest.raises(SimulationError):
            Process(sim, lambda: None)

    def test_negative_sleep_raises(self, sim):
        def worker():
            yield -1.0

        Process(sim, worker())
        with pytest.raises(SimulationError):
            sim.run()

    def test_bad_yield_value_raises(self, sim):
        def worker():
            yield "nope"

        Process(sim, worker())
        with pytest.raises(SimulationError):
            sim.run()


class TestSignals:
    def test_signal_wakes_waiter_with_value(self, sim):
        sig = Signal(sim, "data-ready")
        got = []

        def waiter():
            value = yield sig
            got.append((sim.now, value))

        Process(sim, waiter())
        sim.schedule(2.0, sig.trigger, "payload")
        sim.run()
        assert got == [(2.0, "payload")]

    def test_trigger_wakes_all_waiters(self, sim):
        sig = Signal(sim)
        woken = []

        def waiter(tag):
            yield sig
            woken.append(tag)

        Process(sim, waiter("a"))
        Process(sim, waiter("b"))
        sim.schedule(1.0, sig.trigger)
        sim.run()
        assert sorted(woken) == ["a", "b"]

    def test_trigger_returns_waiter_count(self, sim):
        sig = Signal(sim)

        def waiter():
            yield sig

        Process(sim, waiter())
        sim.run()  # park the process
        assert sig.trigger() == 1
        assert sig.trigger() == 0
        assert sig.trigger_count == 2

    def test_waiter_not_rewoken_by_second_trigger(self, sim):
        sig = Signal(sim)
        wakes = []

        def waiter():
            yield sig
            wakes.append(sim.now)
            yield 10.0

        Process(sim, waiter())
        sim.schedule(1.0, sig.trigger)
        sim.schedule(2.0, sig.trigger)
        sim.run()
        assert wakes == [1.0]


class TestInterruptAndKill:
    def test_interrupt_raises_inside_generator(self, sim):
        events = []

        def worker():
            try:
                yield 10.0
            except Interrupted as exc:
                events.append(("interrupted", exc.cause, sim.now))

        proc = Process(sim, worker())
        sim.run(until=1.0)
        assert proc.interrupt("reason") is True
        sim.run()
        assert events == [("interrupted", "reason", 1.0)]
        assert proc.alive is False

    def test_interrupt_can_be_survived(self, sim):
        events = []

        def worker():
            try:
                yield 10.0
            except Interrupted:
                events.append("caught")
            yield 1.0
            events.append("resumed")

        proc = Process(sim, worker())
        sim.run(until=1.0)
        proc.interrupt()
        sim.run()
        assert events == ["caught", "resumed"]
        assert proc.finished_at == 2.0

    def test_interrupt_dead_process_returns_false(self, sim):
        def worker():
            yield 1.0

        proc = Process(sim, worker())
        sim.run()
        assert proc.interrupt() is False

    def test_interrupt_while_waiting_on_signal(self, sim):
        sig = Signal(sim)
        events = []

        def worker():
            try:
                yield sig
            except Interrupted:
                events.append("interrupted")

        proc = Process(sim, worker())
        sim.run()
        proc.interrupt()
        sim.run()
        assert events == ["interrupted"]
        # No dangling waiter: trigger wakes nobody.
        assert sig.trigger() == 0

    def test_kill_terminates_silently(self, sim):
        progressed = []

        def worker():
            yield 10.0
            progressed.append(True)

        proc = Process(sim, worker())
        sim.run(until=1.0)
        proc.kill()
        sim.run()
        assert proc.alive is False
        assert progressed == []
        assert sim.pending_count() == 0
