"""Tests for the Topology graph type (repro.topology.graph)."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.graph import Topology


def build_path(n: int) -> Topology:
    topo = Topology("path")
    for i in range(n):
        topo.add_node(i)
    for i in range(n - 1):
        topo.add_edge(i, i + 1)
    return topo


class TestConstruction:
    def test_add_node_idempotent(self):
        topo = Topology()
        topo.add_node(0)
        topo.add_node(0)
        assert topo.num_nodes == 1

    def test_negative_node_rejected(self):
        with pytest.raises(TopologyError):
            Topology().add_node(-1)

    def test_add_edge_symmetric(self):
        topo = build_path(2)
        assert topo.has_edge(0, 1)
        assert topo.has_edge(1, 0)
        assert topo.num_edges == 1

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_node(0)
        with pytest.raises(TopologyError):
            topo.add_edge(0, 0)

    def test_duplicate_edge_rejected(self):
        topo = build_path(2)
        with pytest.raises(TopologyError):
            topo.add_edge(0, 1)
        with pytest.raises(TopologyError):
            topo.add_edge(1, 0)

    def test_edge_to_unknown_node_rejected(self):
        topo = Topology()
        topo.add_node(0)
        with pytest.raises(TopologyError):
            topo.add_edge(0, 1)

    def test_non_positive_weight_rejected(self):
        topo = Topology()
        topo.add_node(0)
        topo.add_node(1)
        with pytest.raises(TopologyError):
            topo.add_edge(0, 1, weight=0.0)

    def test_default_weight_from_coordinates(self):
        topo = Topology()
        topo.add_node(0, (0.0, 0.0))
        topo.add_node(1, (3.0, 4.0))
        topo.add_edge(0, 1)
        assert topo.edge_weight(0, 1) == pytest.approx(5.0)

    def test_default_weight_without_coordinates_is_one(self):
        topo = build_path(2)
        assert topo.edge_weight(0, 1) == 1.0

    def test_remove_edge(self):
        topo = build_path(3)
        topo.remove_edge(0, 1)
        assert not topo.has_edge(0, 1)
        with pytest.raises(TopologyError):
            topo.remove_edge(0, 1)


class TestQueries:
    def test_neighbors(self):
        topo = build_path(3)
        assert sorted(topo.neighbors(1)) == [0, 2]
        assert topo.degree(1) == 2
        assert topo.degree(0) == 1

    def test_neighbors_unknown_node_raises(self):
        with pytest.raises(TopologyError):
            build_path(2).neighbors(9)

    def test_neighbors_cache_tracks_edge_mutations(self):
        topo = build_path(3)
        assert topo.neighbors(1) == (0, 2)
        before = topo.version
        topo.remove_edge(1, 2)
        assert topo.version > before
        assert topo.neighbors(1) == (0,)
        assert topo.neighbors(2) == ()
        topo.add_edge(1, 2)
        assert topo.neighbors(1) == (0, 2)

    def test_neighbors_cache_sees_new_nodes(self):
        topo = build_path(2)
        assert topo.neighbors(1) == (0,)
        topo.add_node(2)
        topo.add_edge(1, 2)
        assert topo.neighbors(1) == (0, 2)
        assert topo.neighbors(2) == (1,)

    def test_edge_weight_missing_raises(self):
        with pytest.raises(TopologyError):
            build_path(3).edge_weight(0, 2)

    def test_edges_yields_each_once(self):
        topo = build_path(4)
        edges = list(topo.edges())
        assert len(edges) == 3
        assert all(a < b for a, b, _ in edges)

    def test_contains(self):
        topo = build_path(2)
        assert 0 in topo
        assert 5 not in topo

    def test_positions(self):
        topo = Topology()
        topo.add_node(0)
        assert topo.position(0) is None
        topo.set_position(0, (1.0, 2.0))
        assert topo.position(0) == (1.0, 2.0)
        with pytest.raises(TopologyError):
            topo.set_position(9, (0, 0))

    def test_degrees_map(self):
        topo = build_path(3)
        assert topo.degrees() == {0: 1, 1: 2, 2: 1}

    def test_repr_mentions_counts(self):
        assert "nodes=3" in repr(build_path(3))


class TestStructure:
    def test_connected_components(self):
        topo = build_path(3)
        topo.add_node(10)
        topo.add_node(11)
        topo.add_edge(10, 11)
        components = topo.connected_components()
        assert sorted(len(c) for c in components) == [2, 3]
        assert not topo.is_connected()

    def test_empty_graph_is_connected(self):
        assert Topology().is_connected()

    def test_subgraph_keeps_internal_edges(self):
        topo = build_path(4)
        sub = topo.subgraph([1, 2])
        assert sub.num_nodes == 2
        assert sub.has_edge(1, 2)
        assert not sub.has_edge(0, 1)

    def test_subgraph_unknown_node_raises(self):
        with pytest.raises(TopologyError):
            build_path(2).subgraph([0, 99])

    def test_copy_is_deep(self):
        topo = build_path(3)
        dup = topo.copy()
        dup.remove_edge(0, 1)
        assert topo.has_edge(0, 1)
        assert not dup.has_edge(0, 1)

    def test_validate_passes_on_well_formed(self):
        build_path(5).validate()

    def test_validate_catches_asymmetry(self):
        topo = build_path(2)
        # Corrupt internals deliberately.
        del topo._adjacency[1][0]
        with pytest.raises(TopologyError):
            topo.validate()
