"""Tests for islands (§6) and the strong-consistency baseline (§1)."""

from __future__ import annotations

import pytest

from repro.core.islands import (
    bridge_latency,
    bridge_system,
    detect_islands,
    elect_leaders,
    plan_bridges,
)
from repro.core.metrics import reach_time
from repro.core.strong import StrongConsistencySystem
from repro.core.system import ReplicationSystem
from repro.core.variants import fast_consistency, weak_consistency
from repro.demand.field import two_valley_field
from repro.demand.static import ConstantDemand
from repro.errors import ConfigurationError, ExperimentError
from repro.topology.graph import Topology
from repro.topology.simple import grid, line


def valley_grid(rows=9, cols=9):
    topo = grid(rows, cols)
    demand = two_valley_field(topo, plane_size=float(rows - 1), peak=100.0, base=1.0)
    return topo, demand


class TestDetection:
    def test_two_valleys_give_two_islands(self):
        topo, demand = valley_grid()
        snapshot = demand.snapshot(topo.nodes)
        islands = detect_islands(topo, snapshot, percentile=80.0, min_size=2)
        assert len(islands) == 2
        # The islands are disjoint and contain the valley centres.
        assert not (islands[0] & islands[1])

    def test_min_size_filters_singletons(self):
        topo = line(5)
        snapshot = {0: 10.0, 1: 0.0, 2: 10.0, 3: 0.0, 4: 0.0}
        islands = detect_islands(topo, snapshot, percentile=70.0, min_size=2)
        assert islands == []

    def test_empty_demand_rejected(self):
        with pytest.raises(ExperimentError):
            detect_islands(line(3), {}, percentile=50.0)


class TestLeaders:
    def test_leader_is_max_demand(self):
        snapshot = {0: 5.0, 1: 9.0, 2: 9.0}
        islands = elect_leaders([{0, 1, 2}], snapshot)
        assert islands[0].leader == 1  # tie 1 vs 2 -> lowest id
        assert islands[0].total_demand == 23.0
        assert 2 in islands[0]

    def test_empty_island_rejected(self):
        with pytest.raises(ExperimentError):
            elect_leaders([set()], {})


class TestBridges:
    def test_bridge_latency_scales_with_hops(self):
        topo = line(5)
        assert bridge_latency(topo, 0, 4, per_hop_delay=0.1) == pytest.approx(0.4)

    def test_plan_bridges_complete_over_leaders(self):
        topo, demand = valley_grid()
        snapshot = demand.snapshot(topo.nodes)
        islands = elect_leaders(
            detect_islands(topo, snapshot, percentile=80.0, min_size=2), snapshot
        )
        bridges = plan_bridges(topo, islands, per_hop_delay=0.02)
        assert len(bridges) == 1  # two leaders -> one bridge
        a, b, delay = bridges[0]
        assert delay > 0.02  # leaders are several hops apart

    def test_unreachable_leaders_raise(self):
        topo = Topology()
        topo.add_node(0)
        topo.add_node(1)
        with pytest.raises(ExperimentError):
            bridge_latency(topo, 0, 1, 0.1)


class TestBridgeSystem:
    def test_requires_fast_update(self):
        topo, demand = valley_grid()
        system = ReplicationSystem(topo, demand, weak_consistency(), seed=1)
        with pytest.raises(ConfigurationError):
            bridge_system(system)

    def test_bridging_accelerates_far_island(self):
        topo, demand = valley_grid()
        snapshot = demand.snapshot(topo.nodes, 0.0)
        islands = elect_leaders(
            detect_islands(topo, snapshot, percentile=80.0, min_size=2), snapshot
        )
        origin = islands[0].leader
        far = islands[1] if islands[1].leader != origin else islands[0]

        def far_reach(bridged: bool):
            system = ReplicationSystem(topo, demand, fast_consistency(), seed=7)
            if bridged:
                built = bridge_system(system, percentile=80.0, min_size=2)
                assert len(built) == 2
            system.start()
            update = system.inject_write(origin)
            system.run_until_replicated(update.uid, max_time=120.0)
            times = system.apply_times(update.uid)
            leader_time = times[far.leader]
            member_mean = sum(times[m] for m in far.members) / len(far.members)
            return leader_time, member_mean

        plain_leader, plain_members = far_reach(False)
        bridged_leader, bridged_members = far_reach(True)
        assert bridged_leader < plain_leader
        assert bridged_leader < 1.0  # essentially link-speed via the overlay
        assert bridged_members < plain_members

    def test_single_island_installs_no_bridges(self):
        topo = line(6)
        demand = ConstantDemand(5.0)
        system = ReplicationSystem(topo, demand, fast_consistency(), seed=1)
        islands = bridge_system(system, percentile=50.0)
        assert len(islands) <= 1 or all(
            not system.network.overlay_neighbors(n) for n in topo.nodes
        )


class TestStrongConsistency:
    def test_write_commits_and_reaches_everyone(self):
        topo = grid(3, 3)
        system = StrongConsistencySystem(topo, seed=1, link_delay=0.02)
        wid = system.write(origin=0, key="x", value="v")
        system.sim.run(until=10.0)
        assert system.committed(wid)
        for server in system.servers.values():
            assert server.read("x") is not None

    def test_message_cost_is_three_n_minus_one(self):
        topo = grid(3, 3)
        system = StrongConsistencySystem(topo, seed=1)
        system.write(origin=0)
        system.sim.run(until=10.0)
        assert system.expected_messages_per_write() == 3 * 8
        assert system.network.counters.messages_sent == 3 * 8

    def test_latency_grows_with_depth(self):
        shallow = StrongConsistencySystem(grid(2, 2), seed=1, link_delay=0.02)
        deep = StrongConsistencySystem(line(16), seed=1, link_delay=0.02)
        shallow.write(origin=0)
        deep.write(origin=0)
        shallow.sim.run(until=10.0)
        deep.sim.run(until=10.0)
        assert deep.latencies[0] > shallow.latencies[0]
        # BFS depth 15, prepare+ack = 2 * 15 * 0.02.
        assert deep.latencies[0] == pytest.approx(0.6, abs=1e-6)

    def test_loss_causes_write_failures(self):
        failures = 0
        for seed in range(6):
            system = StrongConsistencySystem(
                line(12), seed=seed, loss=0.2, write_timeout=3.0
            )
            wid = system.write(origin=0)
            system.sim.run(until=10.0)
            if not system.committed(wid):
                failures += 1
        assert failures > 0  # synchronous writes are fragile under loss

    def test_single_node_commits_immediately(self):
        topo = Topology()
        topo.add_node(0)
        system = StrongConsistencySystem(topo, seed=1)
        wid = system.write(origin=0)
        assert system.committed(wid)
        assert system.latencies == [0.0]

    def test_disconnected_topology_rejected(self):
        topo = Topology()
        topo.add_node(0)
        topo.add_node(1)
        with pytest.raises(ConfigurationError):
            StrongConsistencySystem(topo)

    def test_unknown_origin_rejected(self):
        from repro.errors import SimulationError

        system = StrongConsistencySystem(line(3))
        with pytest.raises(SimulationError):
            system.write(origin=42)
