"""End-to-end telemetry: streaming sink vs exact lists, resume, cluster.

The issue's acceptance bar, asserted on *real* campaign runs: streaming
aggregates must match exact list-based values — exactly for counts and
means, within the sketch's certified bound for quantiles — including
across an interrupt-then-resume boundary, and ``campaign status`` must
answer from the checkpoint in O(1) memory without materializing trials.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.cli import main
from repro.errors import ExperimentError
from repro.experiments.campaign import Campaign, CampaignPaused
from repro.experiments.plan import ExperimentPlan
from repro.experiments.sink import (
    StreamingSink,
    _scenario_parts,
    default_sidecar,
    stream_status,
)
from repro.experiments.scenarios import VARIANTS
from repro.runtime.cluster import ReplicaCluster
from repro.telemetry import MetricRegistry, SnapshotEmitter, read_snapshots
from repro.telemetry.columnar import export_columnar, read_column, read_manifest


def small_plan(name="t", **overrides) -> ExperimentPlan:
    defaults = dict(
        name=name,
        topology="ring",
        demand="uniform",
        variants=("weak", "fast"),
        n=8,
        reps=2,
        seed=5,
    )
    defaults.update(overrides)
    return ExperimentPlan(**defaults)


def two_plan_campaign(**overrides) -> Campaign:
    return Campaign(
        "duo",
        {
            "a": small_plan("a", seed=5),
            "b": small_plan("b", topology="line", n=9, seed=7),
        },
        **overrides,
    )


def exact_groups(sink):
    """(plan, series) -> list of materialized trials, from the sink."""
    groups = {}
    for key in sink.keys():
        groups.setdefault(_scenario_parts(key), []).append(sink.get(key))
    return groups


def run_cli(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


# ---------------------------------------------------------------------------
# Streaming aggregates vs exact list-based values
# ---------------------------------------------------------------------------


class TestStreamingMatchesExact:
    def test_counts_and_means_exact_quantiles_within_bound(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        with StreamingSink(path) as sink:
            two_plan_campaign().run(sink=sink)
            registry = sink.registry
            groups = exact_groups(sink)
        assert groups
        for (plan, series), trials in groups.items():
            labels = {"plan": plan, "series": series}
            assert registry.counter("campaign.trials", **labels).value == len(
                trials
            )
            converged = [t for t in trials if t.time_all is not None]
            if converged:
                assert (
                    registry.counter("campaign.converged", **labels).value
                    == len(converged)
                )
            values = [float(t.time_all) for t in converged]
            if not values:
                continue
            moments = registry.moments("trial.time_all", **labels)
            # Counts and means are exact, not approximate.
            assert moments.count == len(values)
            assert moments.mean == pytest.approx(
                sum(values) / len(values), abs=1e-12
            )
            assert moments.minimum == min(values)
            assert moments.maximum == max(values)
            sketch = registry.sketch("trial.time_all.sketch", **labels)
            assert sketch.count == len(values)
            for p in (0.5, 0.95, 0.99):
                got = sketch.quantile(p)
                target = p * len(values)
                below = sum(1 for v in values if v < got)
                at_or_below = sum(1 for v in values if v <= got)
                err = sketch.rank_error
                assert below - err <= target <= at_or_below + err

    def test_sidecar_written_and_restores_identical(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        with StreamingSink(path) as sink:
            two_plan_campaign().run(sink=sink)
            expected = sink.registry.to_json()
        sidecar = default_sidecar(path)
        assert sidecar.exists()
        payload = json.loads(sidecar.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro-telemetry-sidecar/1"
        assert payload["source"] == path.name
        restored = MetricRegistry.restore(payload["telemetry"])
        assert restored.to_json() == expected

    def test_reopen_does_not_double_count(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        campaign = two_plan_campaign()
        with StreamingSink(path) as sink:
            campaign.run(sink=sink)
            trials = len(sink)
        with StreamingSink(path) as sink:
            total = sum(
                metric.value
                for name, _, metric in sink.registry.series()
                if name == "campaign.trials"
            )
            assert total == trials


# ---------------------------------------------------------------------------
# Interrupt-then-resume
# ---------------------------------------------------------------------------


class TestInterruptResume:
    def test_resumed_registry_bit_identical_to_uninterrupted(self, tmp_path):
        campaign = two_plan_campaign()

        straight_path = tmp_path / "straight.jsonl"
        with StreamingSink(straight_path) as sink:
            straight = campaign.run(sink=sink)
            straight_json = sink.registry.to_json()

        resumed_path = tmp_path / "resumed.jsonl"
        with StreamingSink(resumed_path) as sink:
            with pytest.raises(CampaignPaused) as excinfo:
                campaign.run(sink=sink, limit=3)
        assert excinfo.value.done == 3
        with StreamingSink(resumed_path) as sink:
            resumed = campaign.run(sink=sink)
            resumed_json = sink.registry.to_json()

        # Trial-level results and streamed aggregates both bit-identical.
        assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
            straight.to_dict(), sort_keys=True
        )
        assert resumed_json == straight_json

    def test_resume_folds_only_past_watermark(self, tmp_path):
        campaign = two_plan_campaign()
        path = tmp_path / "cp.jsonl"
        with StreamingSink(path) as sink:
            with pytest.raises(CampaignPaused):
                campaign.run(sink=sink, limit=3)
        # The sidecar covers all three; reopening must fold nothing new.
        status = stream_status(path)
        assert status.folded == 3 and status.trials == 3
        with StreamingSink(path) as sink:
            total = sum(
                metric.value
                for name, _, metric in sink.registry.series()
                if name == "campaign.trials"
            )
            assert total == 3

    def test_stale_sidecar_triggers_full_refold(self, tmp_path):
        campaign = two_plan_campaign()
        path = tmp_path / "cp.jsonl"
        with StreamingSink(path) as sink:
            campaign.run(sink=sink)
        # Truncate the log below the sidecar watermark: the registry in
        # the sidecar now claims trials the log no longer holds.
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        path.write_text("".join(lines[:4]), encoding="utf-8")  # header + 3
        with StreamingSink(path) as sink:
            total = sum(
                metric.value
                for name, _, metric in sink.registry.series()
                if name == "campaign.trials"
            )
            assert total == 3


# ---------------------------------------------------------------------------
# O(1) status and torn-line tolerance
# ---------------------------------------------------------------------------


class TestStreamStatus:
    def test_status_without_materializing(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        with StreamingSink(path) as sink:
            two_plan_campaign().run(sink=sink)
            trials = len(sink)
        status = stream_status(path)
        assert status.trials == trials
        assert status.torn_lines == 0 and not status.partial
        assert status.folded == trials
        assert status.telemetry is not None
        assert status.counts["a"] + status.counts["b"] == trials

    def test_torn_final_line_counts_partial(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        with StreamingSink(path) as sink:
            two_plan_campaign().run(sink=sink)
            trials = len(sink)
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"key": "a::rep=9/fau')  # writer died mid-record
        status = stream_status(path)
        assert status.trials == trials
        assert status.torn_lines == 1 and status.partial

    def test_structurally_incomplete_row_is_torn_not_fatal(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        with StreamingSink(path) as sink:
            two_plan_campaign().run(sink=sink)
            trials = len(sink)
        with path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps({"kind": "trial", "key": "a::rep=9"}) + "\n")
        status = stream_status(path)
        assert status.trials == trials
        assert status.torn_lines == 1 and status.partial

    def test_materialize_false_get_raises(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        with StreamingSink(path) as sink:
            two_plan_campaign().run(sink=sink)
            key = next(iter(sink.keys()))
        with StreamingSink(path, materialize=False) as sink:
            assert key in sink
            with pytest.raises(ExperimentError):
                sink.get(key)
            assert sink.get("not::recorded") is None


# ---------------------------------------------------------------------------
# Columnar export
# ---------------------------------------------------------------------------


class TestColumnarExport:
    def test_export_and_read_back_matches_trials(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        with StreamingSink(path) as sink:
            two_plan_campaign().run(sink=sink)
            trials = [(key, sink.get(key)) for key in sink.keys()]
        out = tmp_path / "cols"
        manifest = export_columnar(path, out)
        assert manifest["schema"] == "repro-columnar/1"
        assert manifest["rows"] == len(trials)
        loaded = read_manifest(out)
        assert loaded == manifest
        keys = (out / "keys.txt").read_text(encoding="utf-8").splitlines()
        assert keys == [key for key, _ in trials]
        reps = read_column(out, "rep")
        assert reps == [trial.rep for _, trial in trials]
        time_all = read_column(out, "time_all")
        for got, (_, trial) in zip(time_all, trials):
            if trial.time_all is None:
                assert math.isnan(got)
            else:
                assert got == pytest.approx(float(trial.time_all))

    def test_unknown_column_raises(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        with StreamingSink(path) as sink:
            two_plan_campaign().run(sink=sink)
        out = tmp_path / "cols"
        export_columnar(path, out)
        with pytest.raises(ExperimentError):
            read_column(out, "no_such_column")


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCli:
    def test_status_telemetry_and_export(self, tmp_path, capsys):
        checkpoint = tmp_path / "cp.jsonl"
        run_cli(
            capsys,
            "campaign",
            "run",
            "smoke",
            "--reps",
            "1",
            "--checkpoint",
            str(checkpoint),
        )
        out = run_cli(
            capsys,
            "campaign",
            "status",
            "--checkpoint",
            str(checkpoint),
            "--telemetry",
        )
        assert "p95" in out and "trials" in out
        out = run_cli(
            capsys,
            "campaign",
            "export",
            "--checkpoint",
            str(checkpoint),
            "--columnar",
            str(tmp_path / "cols"),
        )
        assert "rows" in out
        assert (tmp_path / "cols" / "manifest.json").exists()


# ---------------------------------------------------------------------------
# Live-cluster registry
# ---------------------------------------------------------------------------


class TestClusterTelemetry:
    def test_puts_feed_counters_sketch_and_emitter(self, tmp_path):
        trail = tmp_path / "trail.jsonl"
        with ReplicaCluster(
            nodes=6, config=VARIANTS["fast"](), seed=3, time_scale=0.02
        ) as cluster:
            uids = [
                cluster.put("content", f"v{i}").uid for i in range(4)
            ]
            for uid in uids:
                assert cluster.wait_replicated(uid, timeout=30.0)
            cluster.read("content")
            with SnapshotEmitter(cluster.telemetry, path=trail) as emitter:
                cluster.emit_metrics(emitter, phase="test")
            snapshot = cluster.telemetry_snapshot()
            p99 = cluster.replication_latency_quantile(0.99)
            stats = cluster.stats()
        registry = MetricRegistry.restore(snapshot)
        labels = {"transport": "queue"}
        assert registry.counter("cluster.puts", **labels).value == 4
        assert registry.counter("cluster.gets", **labels).value == 1
        assert (
            registry.counter("cluster.updates_replicated", **labels).value == 4
        )
        moments = registry.moments("cluster.replication_latency", **labels)
        assert moments.count == 4 and moments.mean > 0.0
        sketch = registry.sketch(
            "cluster.replication_latency.sketch", **labels
        )
        assert sketch.count == 4
        assert p99 is not None and p99 > 0.0
        assert stats["telemetry"]["schema"] == "repro-telemetry/1"
        records = list(read_snapshots(trail))
        assert len(records) == 1 and records[0]["phase"] == "test"

    def test_latency_quantile_none_before_any_replication(self):
        with ReplicaCluster(
            nodes=4, config=VARIANTS["fast"](), seed=3, time_scale=0.02
        ) as cluster:
            assert cluster.replication_latency_quantile(0.5) is None
