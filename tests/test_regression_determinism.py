"""Regression guards: driver determinism and remaining edge cases."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.experiments.figures import figure_cdf, table1_orderings
from repro.sim.engine import Simulator
from repro.sim.network import FixedLatency, Network
from repro.topology.analysis import hop_pair_counts, summarize
from repro.topology.graph import Topology
from repro.topology.simple import grid, line


class TestDriverDeterminism:
    """Identical seeds must give bit-identical experiment results —
    the property every number in EXPERIMENTS.md relies on."""

    def test_figure_cdf_reproducible(self):
        a = figure_cdf(n=20, reps=4, seed=11)
        b = figure_cdf(n=20, reps=4, seed=11)
        assert a.means == b.means
        assert a.curves == b.curves
        assert a.speedup_high_demand == b.speedup_high_demand

    def test_figure_cdf_seed_sensitivity(self):
        a = figure_cdf(n=20, reps=4, seed=11)
        b = figure_cdf(n=20, reps=4, seed=12)
        assert a.means != b.means

    def test_table1_is_pure(self):
        assert table1_orderings().rows() == table1_orderings().rows()


class TestNetworkEdgeCases:
    def test_detach_drops_future_deliveries(self, triangle):
        sim = Simulator(seed=1)
        net = Network(sim, triangle, latency=FixedLatency(0.1))
        got = []
        net.attach(1, lambda s, m: got.append(m))
        net.detach(1)

        class Msg:
            kind = "m"

            def size_bytes(self):
                return 1

        net.send(0, 1, Msg())
        sim.run()
        assert got == []
        assert net.counters.messages_dropped == 1

    def test_drop_reasons_traced(self, triangle):
        sim = Simulator(seed=1)
        net = Network(sim, triangle, latency=FixedLatency(0.1))
        net.set_link_down(0, 1)

        class Msg:
            kind = "m"

            def size_bytes(self):
                return 1

        net.send(0, 1, Msg())
        drops = sim.trace.select("net.drop")
        assert drops and drops[0].get("reason") == "link-down"


class TestAnalysisEdgeCases:
    def test_summarize_disconnected_graph(self):
        topo = Topology()
        topo.add_node(0)
        topo.add_node(1)
        info = summarize(topo)
        assert info["connected"] is False
        assert info["diameter"] is None
        assert info["avg_path_length"] is None

    def test_summarize_empty_graph(self):
        info = summarize(Topology())
        assert info["nodes"] == 0
        assert info["diameter"] is None

    def test_hop_pair_counts_on_grid(self):
        topo = grid(3, 3)
        counts = hop_pair_counts(topo)
        assert counts[0] == 9
        assert counts[max(counts)] == 81  # all ordered pairs

    def test_hop_pair_counts_respects_max_hops(self):
        topo = line(6)
        counts = hop_pair_counts(topo, max_hops=2)
        assert max(counts) == 2
        # pairs within 2 hops on a 6-line: 6 self + 10 at dist1 + 8 at dist2
        assert counts[2] == 24
