"""Property tests: the tuple-keyed heap preserves the Event ordering.

The engine's heap stores ``(time, priority, seq, handle, callback,
args)`` tuples; before that it stored :class:`~repro.sim.events.Event`
objects ordered by ``Event.__lt__`` over ``(time, priority, seq)``.
These properties pin the refactor: on arbitrary schedule/cancel/run
interleavings the firing order must equal what sorting the equivalent
``Event`` objects produces, ties and all.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.events import DEFAULT_PRIORITY, Event

# A coarse grid of delays and priorities forces plenty of exact
# (time, priority) collisions, so the seq tie-break actually decides.
delays = st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0])
priorities = st.sampled_from([-1, 0, 1])

schedule_op = st.tuples(st.just("schedule"), delays, priorities)
cancel_op = st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=500))
run_op = st.tuples(st.just("run"), st.integers(min_value=1, max_value=4))

interleavings = st.lists(
    st.one_of(schedule_op, cancel_op, run_op), min_size=1, max_size=60
)


class ModelEntry:
    """One scheduled event mirrored outside the engine."""

    def __init__(self, event_id, handle, priority):
        self.id = event_id
        self.handle = handle
        # The Event wraps the real handle, so Event.__lt__ compares the
        # genuine (time, priority, seq) keys — the pre-refactor order.
        self.event = Event(handle, lambda: None, (), label=str(event_id))
        self.cancelled = False
        self.fired = False

    @property
    def live(self):
        return not self.cancelled and not self.fired


def model_order(entries):
    """Firing order per the pre-refactor semantics: Event.__lt__ sort."""
    return [
        entry.id
        for entry in sorted(
            (e for e in entries if e.live), key=lambda e: e.event
        )
    ]


class EventKey:
    """Adapter so sorted(key=...) goes through Event.__lt__ itself."""

    def __init__(self, event):
        self.event = event

    def __lt__(self, other):
        return self.event < other.event


@settings(max_examples=60, deadline=None)
@given(interleavings)
def test_firing_order_matches_event_lt_model(ops):
    sim = Simulator(seed=0)
    sim.trace.disable()
    fired = []
    entries = []
    expected_fired = []

    for op in ops:
        if op[0] == "schedule":
            _, delay, priority = op
            event_id = len(entries)
            handle = sim.schedule(delay, fired.append, event_id, priority=priority)
            entries.append(ModelEntry(event_id, handle, priority))
        elif op[0] == "cancel":
            if not entries:
                continue
            entry = entries[op[1] % len(entries)]
            expected = entry.live
            assert sim.cancel(entry.handle) == expected
            if expected:
                entry.cancelled = True
        else:  # run up to n events
            _, budget = op
            expected_now = [e for e in entries if e.live]
            expected_now.sort(key=lambda e: EventKey(e.event))
            for entry in expected_now[:budget]:
                entry.fired = True
                expected_fired.append(entry.id)
            sim.run(max_events=budget)

    expected_fired.extend(model_order(entries))
    sim.run()
    assert fired == expected_fired


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), delays, priorities), min_size=1, max_size=40
    )
)
def test_schedule_fast_shares_the_ordering(mix):
    """schedule_fast entries slot into the same total order as schedule.

    The fast path skips handle allocation but draws from the same
    sequence counter, so a fast event scheduled after a handled event
    at the same (time, priority) fires after it — exactly the Event
    model with insertion order as the tie-break.
    """
    sim = Simulator(seed=0)
    sim.trace.disable()
    fired = []
    expected = []

    for index, (fast, delay, priority) in enumerate(mix):
        if fast:
            # schedule_fast has no priority parameter: DEFAULT_PRIORITY.
            sim.schedule_fast(delay, fired.append, index)
            expected.append((delay, DEFAULT_PRIORITY, index))
        else:
            sim.schedule(delay, fired.append, index, priority=priority)
            expected.append((delay, priority, index))

    expected.sort()
    sim.run()
    assert fired == [event_id for _t, _p, event_id in expected]
