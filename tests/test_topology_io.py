"""Tests for topology persistence (repro.topology.io)."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.brite import internet_like
from repro.topology.io import (
    dumps_brite,
    dumps_edge_list,
    load_edge_list,
    loads_edge_list,
    save_brite,
    save_edge_list,
)
from repro.topology.simple import grid


class TestEdgeListRoundTrip:
    def test_roundtrip_preserves_structure(self):
        topo = internet_like(30, seed=3)
        text = dumps_edge_list(topo)
        back = loads_edge_list(text)
        assert back.name == topo.name
        assert back.num_nodes == topo.num_nodes
        original = {(a, b): w for a, b, w in topo.edges()}
        restored = {(a, b): w for a, b, w in back.edges()}
        assert set(original) == set(restored)
        for key, weight in original.items():
            assert restored[key] == pytest.approx(weight, abs=1e-5)

    def test_roundtrip_preserves_positions(self):
        topo = grid(3, 3)
        back = loads_edge_list(dumps_edge_list(topo))
        for node in topo.nodes:
            assert back.position(node) == pytest.approx(topo.position(node))

    def test_file_roundtrip(self, tmp_path):
        topo = grid(2, 3)
        path = tmp_path / "topo.edges"
        save_edge_list(topo, path)
        back = load_edge_list(path)
        assert back.num_edges == topo.num_edges

    def test_node_without_position(self):
        text = "node 0\nnode 1\nedge 0 1 2.5\n"
        topo = loads_edge_list(text)
        assert topo.position(0) is None
        assert topo.edge_weight(0, 1) == 2.5

    def test_blank_lines_and_comments_ignored(self):
        text = "# comment\n\nnode 0\nnode 1\nedge 0 1 1.0\n"
        assert loads_edge_list(text).num_edges == 1

    def test_malformed_line_raises_with_line_number(self):
        with pytest.raises(TopologyError, match="line 2"):
            loads_edge_list("node 0\ngarbage here\n")

    def test_malformed_edge_raises(self):
        with pytest.raises(TopologyError):
            loads_edge_list("node 0\nedge 0\n")


class TestBriteExport:
    def test_sections_present(self):
        topo = grid(2, 2)
        text = dumps_brite(topo)
        assert "Topology: ( 4 Nodes, 4 Edges )" in text
        assert "Nodes: (4)" in text
        assert "Edges: (4)" in text
        assert "RT_NODE" in text

    def test_save_brite(self, tmp_path):
        path = tmp_path / "t.brite"
        save_brite(grid(2, 2), path)
        assert path.read_text().startswith("Topology:")
