"""Tests for topology persistence (repro.topology.io)."""

from __future__ import annotations

import random

import pytest

from repro.errors import TopologyError
from repro.topology.brite import internet_like
from repro.topology.graph import Topology
from repro.topology.io import (
    dumps_brite,
    dumps_edge_list,
    load_edge_list,
    loads_edge_list,
    save_brite,
    save_edge_list,
)
from repro.topology.simple import grid


def _random_topology(rng: random.Random) -> Topology:
    """A random graph: mixed positioned/position-less nodes, random
    weights, sparse extra nodes, occasionally disconnected."""
    topo = Topology(f"random-{rng.randrange(1 << 16)}")
    n = rng.randint(1, 40)
    for node in range(n):
        if rng.random() < 0.7:
            topo.add_node(node, (rng.uniform(-500, 500), rng.uniform(-500, 500)))
        else:
            topo.add_node(node)
    for a in range(n):
        for b in range(a + 1, n):
            if rng.random() < min(1.0, 3.0 / n):
                topo.add_edge(a, b, rng.uniform(0.001, 900.0))
    return topo


class TestEdgeListRoundTrip:
    def test_roundtrip_preserves_structure(self):
        topo = internet_like(30, seed=3)
        text = dumps_edge_list(topo)
        back = loads_edge_list(text)
        assert back.name == topo.name
        assert back.num_nodes == topo.num_nodes
        original = {(a, b): w for a, b, w in topo.edges()}
        restored = {(a, b): w for a, b, w in back.edges()}
        assert set(original) == set(restored)
        for key, weight in original.items():
            assert restored[key] == pytest.approx(weight, abs=1e-5)

    def test_roundtrip_preserves_positions(self):
        topo = grid(3, 3)
        back = loads_edge_list(dumps_edge_list(topo))
        for node in topo.nodes:
            assert back.position(node) == pytest.approx(topo.position(node))

    def test_file_roundtrip(self, tmp_path):
        topo = grid(2, 3)
        path = tmp_path / "topo.edges"
        save_edge_list(topo, path)
        back = load_edge_list(path)
        assert back.num_edges == topo.num_edges

    def test_node_without_position(self):
        text = "node 0\nnode 1\nedge 0 1 2.5\n"
        topo = loads_edge_list(text)
        assert topo.position(0) is None
        assert topo.edge_weight(0, 1) == 2.5

    def test_blank_lines_and_comments_ignored(self):
        text = "# comment\n\nnode 0\nnode 1\nedge 0 1 1.0\n"
        assert loads_edge_list(text).num_edges == 1

    def test_malformed_line_raises_with_line_number(self):
        with pytest.raises(TopologyError, match="line 2"):
            loads_edge_list("node 0\ngarbage here\n")

    def test_malformed_edge_raises(self):
        with pytest.raises(TopologyError):
            loads_edge_list("node 0\nedge 0\n")


class TestRoundTripProperty:
    """Seeded generative check: any graph survives save/load with the
    identical node set, edge set, weights and positions."""

    @pytest.mark.parametrize("seed", range(20))
    def test_random_graph_roundtrip(self, seed):
        rng = random.Random(1000 + seed)
        topo = _random_topology(rng)
        back = loads_edge_list(dumps_edge_list(topo))
        assert set(back.nodes) == set(topo.nodes)
        original = {(a, b): w for a, b, w in topo.edges()}
        restored = {(a, b): w for a, b, w in back.edges()}
        assert set(original) == set(restored)
        for key, weight in original.items():
            assert restored[key] == pytest.approx(weight, abs=1e-5)
        for node in topo.nodes:
            pos = topo.position(node)
            if pos is None:
                assert back.position(node) is None
            else:
                assert back.position(node) == pytest.approx(pos, abs=1e-5)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graph_file_roundtrip(self, seed, tmp_path):
        topo = _random_topology(random.Random(2000 + seed))
        path = tmp_path / f"random-{seed}.edges"
        save_edge_list(topo, path)
        back = load_edge_list(path)
        assert back.num_nodes == topo.num_nodes
        assert back.num_edges == topo.num_edges
        # A second dump of the loaded graph is textually stable.
        assert dumps_edge_list(back) == dumps_edge_list(back)


class TestBriteExport:
    def test_sections_present(self):
        topo = grid(2, 2)
        text = dumps_brite(topo)
        assert "Topology: ( 4 Nodes, 4 Edges )" in text
        assert "Nodes: (4)" in text
        assert "Edges: (4)" in text
        assert "RT_NODE" in text

    def test_save_brite(self, tmp_path):
        path = tmp_path / "t.brite"
        save_brite(grid(2, 2), path)
        assert path.read_text().startswith("Topology:")
