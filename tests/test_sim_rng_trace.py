"""Tests for RNG streams (repro.sim.rng) and tracing (repro.sim.trace)."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.trace import Tracer


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_differs_by_name(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_differs_by_master(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_result_fits_64_bits(self):
        assert 0 <= derive_seed(123, "stream") < 2**64


class TestRngRegistry:
    def test_streams_are_cached(self):
        rngs = RngRegistry(0)
        assert rngs.stream("s", 1) is rngs.stream("s", 1)

    def test_streams_are_independent(self):
        rngs = RngRegistry(0)
        a = rngs.stream("a")
        b = rngs.stream("b")
        seq_a = [a.random() for _ in range(3)]
        # Draws on b must not perturb a fresh registry's a stream.
        fresh = RngRegistry(0)
        fresh.stream("b").random()
        assert [fresh.stream("a").random() for _ in range(3)] == seq_a

    def test_empty_stream_name_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(0).stream()

    def test_multipart_names(self):
        rngs = RngRegistry(0)
        assert rngs.stream("a", 1) is not rngs.stream("a", 2)
        # ("a", 1) and ("a/1",) name the same stream by design.
        assert rngs.stream("a", 1) is rngs.stream("a/1")

    def test_spawn_derives_child_registry(self):
        parent = RngRegistry(7)
        child_a = parent.spawn("rep", 0)
        child_b = parent.spawn("rep", 1)
        assert child_a.master_seed != child_b.master_seed
        # Reproducible
        again = RngRegistry(7).spawn("rep", 0)
        assert again.master_seed == child_a.master_seed

    def test_stream_names_listed(self):
        rngs = RngRegistry(0)
        rngs.stream("x")
        rngs.stream("y", 2)
        assert set(rngs.stream_names()) == {"x", "y/2"}


class TestTracer:
    def test_records_are_stored(self):
        tracer = Tracer()
        tracer.record(1.0, "session.start", node=3)
        assert len(tracer) == 1
        rec = tracer.records[0]
        assert rec.time == 1.0
        assert rec.category == "session.start"
        assert rec.get("node") == 3
        assert rec.get("missing", "dflt") == "dflt"

    def test_disable_stops_recording(self):
        tracer = Tracer()
        tracer.disable()
        tracer.record(1.0, "x")
        assert len(tracer) == 0
        tracer.enable()
        tracer.record(2.0, "x")
        assert len(tracer) == 1

    def test_enable_only_filters_by_prefix(self):
        tracer = Tracer()
        tracer.enable_only(["session"])
        tracer.record(1.0, "session.start")
        tracer.record(1.0, "session.end")
        tracer.record(1.0, "net.drop")
        assert len(tracer) == 2
        assert tracer.wants("session.anything")
        assert not tracer.wants("net.drop")

    def test_select_by_category_prefix(self):
        tracer = Tracer()
        tracer.record(1.0, "a.x")
        tracer.record(2.0, "a.y")
        tracer.record(3.0, "b")
        assert len(tracer.select("a")) == 2
        assert len(tracer.select("b")) == 1
        assert tracer.select("a.x")[0].time == 1.0

    def test_listeners_fire_on_record(self):
        tracer = Tracer()
        seen = []
        tracer.on_record(lambda rec: seen.append(rec.category))
        tracer.record(0.0, "x")
        assert seen == ["x"]

    def test_clear(self):
        tracer = Tracer()
        tracer.record(0.0, "x")
        tracer.clear()
        assert len(tracer) == 0

    def test_csv_export_contains_fields(self):
        tracer = Tracer()
        tracer.record(1.5, "cat", a=1, b="two")
        text = tracer.to_csv()
        assert "time,category,fields" in text
        assert "1.500000" in text
        rows = list(csv.reader(io.StringIO(text)))
        assert json.loads(rows[1][2]) == {"a": 1, "b": "two"}

    def test_csv_rows_keep_fixed_three_columns(self):
        # Header-driven consumers (DictReader, pandas) rely on every
        # data row matching the 3-column header no matter how many
        # fields a record carries.
        tracer = Tracer()
        tracer.record(1.0, "none")
        tracer.record(2.0, "many", a=1, b=2, c=3, d=4)
        rows = list(csv.reader(io.StringIO(tracer.to_csv())))
        assert all(len(row) == 3 for row in rows)

    def test_csv_fields_round_trip_awkward_values(self):
        # Values containing the old packing's separators (';', '='), the
        # CSV delimiter, quotes and newlines must survive unambiguously:
        # the fields cell is a JSON object, CSV-escaped as one cell.
        tracer = Tracer()
        awkward = {
            "semi": "a;b=c",
            "eq": "x=y=z",
            "comma": "1,2",
            "quote": 'say "hi"',
            "newline": "two\nlines",
        }
        tracer.record(2.0, "cat", **awkward)
        rows = list(csv.reader(io.StringIO(tracer.to_csv())))
        assert rows[0] == ["time", "category", "fields"]
        time_cell, category, packed = rows[1]
        assert time_cell == "2.000000"
        assert category == "cat"
        assert json.loads(packed) == awkward

    def test_wants_cache_tracks_reconfiguration(self):
        tracer = Tracer()
        tracer.enable_only(["session"])
        assert tracer.wants("session.start")
        assert not tracer.wants("net.drop")
        # Reconfiguring must invalidate the memoised verdicts.
        tracer.enable_only(["net"])
        assert tracer.wants("net.drop")
        assert not tracer.wants("session.start")
        tracer.disable()
        assert not tracer.wants("net.drop")
        tracer.enable()
        assert tracer.wants("net.drop")

    def test_select_uses_index_after_clear(self):
        tracer = Tracer()
        tracer.record(1.0, "a.x")
        tracer.clear()
        tracer.record(2.0, "a.x")
        tracer.record(3.0, "a.y")
        tracer.record(4.0, "b")
        selected = tracer.select("a")
        assert [r.time for r in selected] == [2.0, 3.0]

    def test_select_preserves_insertion_order_across_categories(self):
        tracer = Tracer()
        tracer.record(1.0, "a.y")
        tracer.record(2.0, "a.x")
        tracer.record(3.0, "a.y")
        assert [r.time for r in tracer.select("a")] == [1.0, 2.0, 3.0]

    def test_trace_record_has_no_instance_dict(self):
        tracer = Tracer()
        tracer.record(0.0, "x", a=1)
        rec = tracer.records[0]
        assert not hasattr(rec, "__dict__")
        with pytest.raises(AttributeError):
            rec.extra = 1

    def test_iteration(self):
        tracer = Tracer()
        tracer.record(0.0, "x")
        tracer.record(1.0, "y")
        assert [r.category for r in tracer] == ["x", "y"]
