"""Tests for write logs and the content store (repro.replica.log/.store)."""

from __future__ import annotations

import pytest

from repro.errors import ReplicationError
from repro.replica.log import (
    AckedTruncation,
    KeepAll,
    MaxEntries,
    Update,
    WriteLog,
)
from repro.replica.store import ContentStore
from repro.replica.timestamps import Timestamp
from repro.replica.versions import SummaryVector


def make_update(origin: int, seq: int, key: str = "k", counter: int = None):
    return Update(
        origin=origin,
        seq=seq,
        timestamp=Timestamp(counter if counter is not None else seq, origin),
        key=key,
        value=f"v{origin}.{seq}",
        payload_bytes=100,
    )


class TestUpdate:
    def test_uid(self):
        assert make_update(3, 2).uid == (3, 2)

    def test_invalid_seq(self):
        with pytest.raises(ReplicationError):
            make_update(0, 0)

    def test_size_accounts_header_key_payload(self):
        u = make_update(0, 1, key="ab")
        assert u.size_bytes() == 36 + 2 + 100


class TestWriteLogOrdering:
    def test_in_order_appends_advance_summary(self):
        log = WriteLog()
        assert log.add(make_update(1, 1)) is True
        assert log.add(make_update(1, 2)) is True
        assert log.summary.get(1) == 2
        assert log.ahead_ids() == []

    def test_duplicate_add_returns_false(self):
        log = WriteLog()
        log.add(make_update(1, 1))
        assert log.add(make_update(1, 1)) is False
        assert len(log) == 1

    def test_out_of_order_held_ahead(self):
        log = WriteLog()
        log.add(make_update(1, 3))
        assert log.summary.get(1) == 0
        assert log.ahead_ids() == [(1, 3)]
        assert log.has((1, 3))

    def test_gap_fill_folds_ahead_entries(self):
        log = WriteLog()
        log.add(make_update(1, 3))
        log.add(make_update(1, 2))
        assert log.summary.get(1) == 0
        log.add(make_update(1, 1))
        assert log.summary.get(1) == 3
        assert log.ahead_ids() == []

    def test_multiple_origins_independent(self):
        log = WriteLog()
        log.add(make_update(1, 1))
        log.add(make_update(2, 1))
        log.add(make_update(2, 2))
        assert log.summary.get(1) == 1
        assert log.summary.get(2) == 2

    def test_get_known_and_unknown(self):
        log = WriteLog()
        update = make_update(1, 1)
        log.add(update)
        assert log.get((1, 1)) is update
        with pytest.raises(ReplicationError):
            log.get((9, 9))

    def test_add_all_returns_new_only(self):
        log = WriteLog()
        u1, u2 = make_update(1, 1), make_update(1, 2)
        log.add(u1)
        new = log.add_all([u1, u2])
        assert new == [u2]


class TestAntiEntropySupport:
    def test_updates_since_respects_peer_summary(self):
        log = WriteLog()
        for seq in range(1, 5):
            log.add(make_update(1, seq))
        peer = SummaryVector({1: 2})
        missing = log.updates_since(peer)
        assert [u.seq for u in missing] == [3, 4]

    def test_updates_since_ordered_per_origin(self):
        log = WriteLog()
        log.add(make_update(2, 1))
        log.add(make_update(1, 2))
        log.add(make_update(1, 1))
        missing = log.updates_since(SummaryVector())
        assert [u.uid for u in missing] == [(1, 1), (1, 2), (2, 1)]

    def test_updates_since_includes_ahead_entries(self):
        log = WriteLog()
        log.add(make_update(1, 3))  # ahead of prefix
        missing = log.updates_since(SummaryVector())
        assert [u.uid for u in missing] == [(1, 3)]

    def test_all_updates_sorted(self):
        log = WriteLog()
        log.add(make_update(2, 1))
        log.add(make_update(1, 1))
        assert [u.uid for u in log.all_updates()] == [(1, 1), (2, 1)]


class TestTruncation:
    def test_keep_all_never_purges(self):
        log = WriteLog(policy=KeepAll())
        for seq in range(1, 10):
            log.add(make_update(1, seq))
        assert log.purge() == 0
        assert len(log) == 9

    def test_max_entries_purges_oldest(self):
        log = WriteLog(policy=MaxEntries(limit=3))
        for seq in range(1, 6):
            log.add(make_update(1, seq))
        removed = log.purge()
        assert removed == 2
        assert len(log) == 3
        assert not ((1, 1) in [u.uid for u in log.all_updates()])
        # Purged writes are still "known" (has() true) so they are never
        # re-accepted as new.
        assert log.has((1, 1))
        assert log.total_purged == 2

    def test_acked_truncation_follows_ack_vector(self):
        policy = AckedTruncation()
        log = WriteLog(policy=policy)
        for seq in range(1, 5):
            log.add(make_update(1, seq))
        policy.ack_vector = SummaryVector({1: 2})
        assert log.purge() == 2
        remaining = [u.seq for u in log.all_updates()]
        assert remaining == [3, 4]

    def test_ahead_entries_never_purged(self):
        policy = AckedTruncation(ack_vector=SummaryVector({1: 5}))
        log = WriteLog(policy=policy)
        log.add(make_update(1, 3))  # ahead (no prefix yet)
        assert log.purge() == 0
        assert log.has((1, 3))

    def test_can_serve_detects_purged_history(self):
        log = WriteLog(policy=MaxEntries(limit=1))
        for seq in range(1, 4):
            log.add(make_update(1, seq))
        log.purge()
        behind_peer = SummaryVector()  # has nothing
        assert log.can_serve(behind_peer) is False
        caught_up = SummaryVector({1: 2})
        assert log.can_serve(caught_up) is True


class TestContentStore:
    def test_apply_and_read(self):
        store = ContentStore()
        assert store.apply(make_update(1, 1, key="x")) is True
        entry = store.read("x")
        assert entry.value == "v1.1"
        assert store.value("x") == "v1.1"
        assert store.value("missing", "dflt") == "dflt"

    def test_lww_newer_wins(self):
        store = ContentStore()
        store.apply(make_update(1, 1, key="x", counter=1))
        assert store.apply(make_update(2, 1, key="x", counter=5)) is True
        assert store.read("x").origin == 2

    def test_lww_older_loses(self):
        store = ContentStore()
        store.apply(make_update(2, 1, key="x", counter=5))
        assert store.apply(make_update(1, 1, key="x", counter=1)) is False
        assert store.read("x").origin == 2
        assert store.superseded_count == 1

    def test_order_independence(self):
        updates = [
            make_update(1, 1, key="x", counter=1),
            make_update(2, 1, key="x", counter=3),
            make_update(3, 1, key="y", counter=2),
        ]
        a, b = ContentStore(), ContentStore()
        a.apply_all(updates)
        b.apply_all(list(reversed(updates)))
        assert a.content_signature() == b.content_signature()

    def test_signature_differs_on_content(self):
        a, b = ContentStore(), ContentStore()
        a.apply(make_update(1, 1, key="x"))
        assert a.content_signature() != b.content_signature()

    def test_keys_and_len(self):
        store = ContentStore()
        store.apply(make_update(1, 1, key="x"))
        store.apply(make_update(1, 2, key="y"))
        assert sorted(store.keys()) == ["x", "y"]
        assert len(store) == 2
