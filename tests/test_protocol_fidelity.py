"""Protocol-fidelity tests: golden message sequences and cascade depths.

These tests pin the wire behaviour to the paper's §2.1 step list: the
exact message kinds, their order, and the depth bookkeeping of the
valley-flooding cascade.
"""

from __future__ import annotations

import pytest

from repro.core.metrics import cascade_histogram, cascade_hops
from repro.core.system import ReplicationSystem
from repro.core.variants import fast_consistency, weak_consistency
from repro.demand.static import ExplicitDemand
from repro.topology.simple import line


def sent_messages(system, kinds=None):
    """(src, dst, kind) tuples in send order from the trace."""
    records = system.sim.trace.select("net.send")
    out = []
    for rec in records:
        kind = rec.get("kind")
        if kinds is None or kind in kinds:
            out.append((rec.get("src"), rec.get("dst"), kind))
    return out


class TestGoldenSessionSequence:
    """One anti-entropy exchange must follow steps 1-12 exactly."""

    def test_session_message_order(self):
        topo = line(2)
        system = ReplicationSystem(
            topo, ExplicitDemand({0: 1.0, 1: 2.0}), weak_consistency(), seed=1
        )
        system.sim.trace.enable_only(["net.send"])
        system.servers[0].local_write("k", "v")
        # Drive exactly one session deterministically.
        system.nodes[0].anti_entropy.initiate_with(1)
        system.run_until(1.0)
        sequence = sent_messages(system)
        assert sequence == [
            (0, 1, "session-request"),   # step 2
            (1, 0, "summary"),           # step 4 (responder's summary)
            (0, 1, "summary"),           # step 6 (initiator's summary)
            (0, 1, "update-batch"),      # step 8 (initiator's missing)
            (1, 0, "update-batch"),      # step 11 (responder's missing)
        ]
        # Step 12: the responder integrated the new message.
        assert system.servers[1].has_update((0, 1))

    def test_fast_update_message_order(self):
        # A write at 0 with a hotter neighbour 1 triggers steps 13-17.
        topo = line(2)
        system = ReplicationSystem(
            topo, ExplicitDemand({0: 1.0, 1: 5.0}), fast_consistency(), seed=1
        )
        system.sim.trace.enable_only(["net.send"])
        system.inject_write(0)
        system.run_until(0.2)
        sequence = sent_messages(system, kinds={"fast-offer", "fast-reply", "fast-payload"})
        assert sequence == [
            (0, 1, "fast-offer"),    # step 13
            (1, 0, "fast-reply"),    # step 15 (YES)
            (0, 1, "fast-payload"),  # step 17
        ]

    def test_fast_update_no_answer_sends_nothing(self):
        # Step 18: "If the answer of D is NO, B sends nothing."
        topo = line(2)
        system = ReplicationSystem(
            topo, ExplicitDemand({0: 1.0, 1: 5.0}), fast_consistency(), seed=1
        )
        update = system.inject_write(0)
        # Pre-load node 1 with the update, then force a fresh offer by
        # clearing the dedup memory (simulating a repeated trigger).
        system.servers[1].integrate([update], "session", sender=0)
        system.sim.trace.enable_only(["net.send"])
        system.nodes[0].fast.on_new_updates([update], "client", None)
        system.run_until(0.2)
        kinds = [k for _, _, k in sent_messages(system)]
        assert kinds == ["fast-offer", "fast-reply"]  # NO -> no payload


class TestCascadeDepth:
    def slope_system(self, n=6):
        topo = line(n)
        demand = ExplicitDemand({i: float(2**i) for i in range(n)})
        return ReplicationSystem(topo, demand, fast_consistency(), seed=2)

    def test_cascade_depth_counts_push_hops(self):
        system = self.slope_system()
        system.start()
        system.inject_write(0)
        system.run_until(0.8)
        hops = sorted(cascade_hops(system.sim.trace))
        # A 6-node slope floods 5 hops deep: depths 1..5, one each.
        assert hops == [1, 2, 3, 4, 5]
        histogram = cascade_histogram(system.sim.trace)
        assert histogram == {1: 1, 2: 1, 3: 1, 4: 1, 5: 1}

    def test_max_cascade_stat_tracked(self):
        system = self.slope_system()
        system.start()
        system.inject_write(0)
        system.run_until(0.8)
        deepest = max(n.fast.stats.max_cascade_hops for n in system.nodes.values())
        assert deepest == 5

    def test_session_delivery_resets_depth(self):
        # An update that travelled by session starts a fresh cascade:
        # depth restarts at 1 for the next push hop.
        topo = line(4)
        demand = ExplicitDemand({0: 8.0, 1: 1.0, 2: 2.0, 3: 4.0})
        system = ReplicationSystem(topo, demand, fast_consistency(), seed=3)
        system.start()
        # Write at 1: pushes nowhere uphill except 2 (2 > 1)... then 3.
        system.inject_write(1)
        system.run_until(0.5)
        hops = cascade_hops(system.sim.trace)
        assert hops and max(hops) <= 2  # 1->2 (hop 1), 2->3 (hop 2)
