"""Tests for donor selection and runtime replica creation."""

from __future__ import annotations

import pytest

from repro.core.system import ReplicationSystem
from repro.core.variants import fast_consistency, weak_consistency
from repro.demand.static import ConstantDemand, UniformRandomDemand
from repro.errors import ConfigurationError, ReplicationError
from repro.replica.creation import (
    DonorInfo,
    FreshestDonor,
    MostCompleteLog,
    NearestDonor,
    WeightedDonorScore,
)
from repro.topology.simple import line, ring


def info(node, writes=0, log=0, hops=1, staleness=0.0, demand=1.0):
    return DonorInfo(
        node=node,
        total_writes=writes,
        log_length=log,
        hops=hops,
        staleness=staleness,
        demand=demand,
    )


class TestDonorPolicies:
    def test_most_complete_log(self):
        candidates = {1: info(1, writes=5), 2: info(2, writes=9), 3: info(3, writes=9)}
        # Tie between 2 and 3 -> fewest hops, then lowest id.
        assert MostCompleteLog().choose(candidates) == 2

    def test_most_complete_breaks_ties_by_hops(self):
        candidates = {1: info(1, writes=9, hops=3), 2: info(2, writes=9, hops=1)}
        assert MostCompleteLog().choose(candidates) == 2

    def test_nearest_donor(self):
        candidates = {1: info(1, writes=9, hops=4), 2: info(2, writes=2, hops=1)}
        assert NearestDonor().choose(candidates) == 2

    def test_freshest_donor(self):
        candidates = {
            1: info(1, staleness=5.0, writes=9),
            2: info(2, staleness=0.5, writes=2),
        }
        assert FreshestDonor().choose(candidates) == 2

    def test_weighted_score_prefers_balanced_candidate(self):
        candidates = {
            1: info(1, writes=10, hops=10, demand=1.0),
            2: info(2, writes=9, hops=1, demand=1.0),
        }
        # Node 2 misses one write but is 10x closer.
        assert WeightedDonorScore().choose(candidates) == 2

    def test_weighted_score_rejects_negative_weights(self):
        with pytest.raises(ReplicationError):
            WeightedDonorScore(hops_weight=-1.0)

    def test_empty_candidates_rejected(self):
        for policy in (
            MostCompleteLog(),
            NearestDonor(),
            FreshestDonor(),
            WeightedDonorScore(),
        ):
            with pytest.raises(ReplicationError):
                policy.choose({})

    def test_most_complete_final_tie_breaks_by_id(self):
        candidates = {
            7: info(7, writes=9, hops=2),
            3: info(3, writes=9, hops=2),
            5: info(5, writes=9, hops=2),
        }
        assert MostCompleteLog().choose(candidates) == 3

    def test_nearest_breaks_ties_by_completeness_then_id(self):
        candidates = {
            1: info(1, writes=2, hops=1),
            2: info(2, writes=9, hops=1),
        }
        assert NearestDonor().choose(candidates) == 2
        candidates = {
            4: info(4, writes=9, hops=1),
            2: info(2, writes=9, hops=1),
        }
        assert NearestDonor().choose(candidates) == 2

    def test_freshest_breaks_ties_by_completeness(self):
        candidates = {
            1: info(1, staleness=1.0, writes=2),
            2: info(2, staleness=1.0, writes=9),
        }
        assert FreshestDonor().choose(candidates) == 2

    def test_weighted_score_breaks_exact_ties_by_id(self):
        candidates = {9: info(9, writes=5), 4: info(4, writes=5)}
        assert WeightedDonorScore().choose(candidates) == 4

    def test_weighted_score_all_zero_maxima(self):
        # A pool where every component max is zero must not divide by
        # zero; scores tie at the completeness weight and the lowest id
        # wins.
        candidates = {
            6: info(6, writes=0, hops=0, staleness=0.0, demand=0.0),
            2: info(2, writes=0, hops=0, staleness=0.0, demand=0.0),
        }
        assert WeightedDonorScore().choose(candidates) == 2

    def test_weighted_score_zero_max_writes_keeps_other_components(self):
        # With no writes anywhere the hops term still discriminates.
        candidates = {
            1: info(1, writes=0, hops=4, staleness=0.0, demand=0.0),
            2: info(2, writes=0, hops=1, staleness=0.0, demand=0.0),
        }
        assert WeightedDonorScore().choose(candidates) == 2

    def test_weighted_score_zero_staleness_and_demand_maxima(self):
        # staleness/demand maxima of zero fall back to a 1.0 divisor;
        # the completeness gap decides.
        candidates = {
            1: info(1, writes=9, hops=1, staleness=0.0, demand=0.0),
            2: info(2, writes=1, hops=1, staleness=0.0, demand=0.0),
        }
        assert WeightedDonorScore().choose(candidates) == 1

    def test_weighted_score_single_candidate(self):
        assert WeightedDonorScore().choose({8: info(8)}) == 8


class TestAddReplica:
    def make_system(self, **config_overrides):
        system = ReplicationSystem(
            ring(5),
            ConstantDemand(1.0),
            weak_consistency(**config_overrides),
            seed=3,
        )
        return system

    def test_new_replica_bootstraps_from_donor(self):
        system = self.make_system()
        system.start()
        update = system.inject_write(0, key="old")
        system.run_until_replicated(update.uid, max_time=60.0)
        donor = system.add_replica(100, attach_to=[0, 2])
        assert donor in (0, 2)
        system.run_until(system.sim.now + 5.0)
        assert system.servers[100].has_update(update.uid)
        assert system.servers[100].store.value("old") == "v1"

    def test_new_replica_participates_afterwards(self):
        system = self.make_system()
        system.start()
        system.add_replica(100, attach_to=[1])
        system.run_until(2.0)
        update = system.inject_write(100, key="from-new")
        done = system.run_until_replicated(update.uid, max_time=80.0)
        assert done is not None

    def test_donor_policy_most_complete_wins(self):
        system = self.make_system()
        system.start()
        # Make node 0 strictly more complete than node 2 and keep the
        # new writes local (no sessions yet -> run_until small).
        for i in range(3):
            system.servers[0].local_write(f"k{i}", i)
        donor = system.add_replica(
            100, attach_to=[0, 2], donor_policy=MostCompleteLog()
        )
        assert donor == 0

    def test_add_replica_validations(self):
        system = self.make_system()
        with pytest.raises(ConfigurationError):
            system.add_replica(100, attach_to=[])
        with pytest.raises(ConfigurationError):
            system.add_replica(100, attach_to=[99])
        with pytest.raises(ConfigurationError):
            system.add_replica(0, attach_to=[1])  # already exists

    def test_add_replica_rejected_under_acked_truncation(self):
        system = self.make_system(log_truncation="acked")
        with pytest.raises(ConfigurationError):
            system.add_replica(100, attach_to=[0])

    def test_add_replica_before_start(self):
        system = self.make_system()
        system.add_replica(100, attach_to=[0])
        system.start()
        update = system.inject_write(0)
        done = system.run_until_replicated(update.uid, max_time=80.0)
        assert done is not None
        assert system.servers[100].has_update(update.uid)

    def test_bootstrap_uses_real_messages(self):
        system = self.make_system()
        system.start()
        update = system.inject_write(0, key="old")
        system.run_until_replicated(update.uid, max_time=60.0)
        before = system.network.counters.messages_sent
        system.add_replica(100, attach_to=[0])
        system.run_until(system.sim.now + 1.0)
        assert system.network.counters.messages_sent > before

    def test_works_with_fast_consistency_too(self):
        system = ReplicationSystem(
            line(4),
            UniformRandomDemand(seed=4),
            fast_consistency(),
            seed=4,
        )
        system.start()
        update = system.inject_write(0)
        system.run_until_replicated(update.uid, max_time=60.0)
        system.add_replica(50, attach_to=[3])
        system.run_until(system.sim.now + 5.0)
        assert system.servers[50].has_update(update.uid)
