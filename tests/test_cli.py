"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_fig5_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.reps == 120
        assert args.nodes == 50


class TestCommands:
    def test_surface(self, capsys):
        out = run_cli(capsys, "surface")
        assert "valleys = high demand" in out

    def test_table1(self, capsys):
        out = run_cli(capsys, "table1")
        assert "B-C,B-A,B-E,B-D" in out
        assert "B-D,B-E,B-A,B-C" in out

    def test_fig3(self, capsys):
        out = run_cli(capsys, "fig3", "--reps", "5")
        assert "worst case" in out
        assert "optimal case" in out

    def test_fig5_small(self, capsys):
        out = run_cli(capsys, "fig5", "--reps", "3")
        assert "weak (all replicas)" in out
        assert "6.1499" in out  # paper reference column (n=50)

    def test_fig5_plot_flag(self, capsys):
        out = run_cli(capsys, "fig5", "--reps", "4", "--nodes", "20", "--plot")
        assert "legend:" in out

    def test_table2(self, capsys):
        out = run_cli(capsys, "table2", "--reps", "4")
        assert "static" in out
        assert "C'" in out

    def test_scaling(self, capsys):
        out = run_cli(capsys, "scaling", "--reps", "2", "--sizes", "15", "20")
        assert "diameter" in out

    def test_uniform(self, capsys):
        out = run_cli(capsys, "uniform", "--reps", "2")
        assert "line-24" in out

    def test_islands(self, capsys):
        out = run_cli(capsys, "islands", "--reps", "2")
        assert "fast+bridges" in out

    def test_overhead(self, capsys):
        out = run_cli(capsys, "overhead", "--reps", "2")
        assert "fast share" in out

    def test_ablation(self, capsys):
        out = run_cli(capsys, "ablation", "--reps", "3")
        assert "ordered-only" in out
        assert "push-only" in out

    def test_staleness(self, capsys):
        out = run_cli(capsys, "staleness", "--reps", "2")
        assert "oracle" in out
        assert "advert bytes" in out

    def test_strongcost(self, capsys):
        out = run_cli(capsys, "strongcost", "--reps", "2")
        assert "strong" in out

    def test_partition(self, capsys):
        out = run_cli(capsys, "partition", "--reps", "2")
        assert "writer side" in out
        assert "commit rate" in out

    def test_skew(self, capsys):
        out = run_cli(capsys, "skew", "--reps", "2")
        assert "flat" in out
        assert "push deliveries" in out

    def test_run_adhoc(self, capsys):
        out = run_cli(
            capsys, "run", "--topology", "ring", "-n", "8", "--variant", "fast"
        )
        assert "sessions to all replicas" in out
        assert "messages" in out

    def test_sweep(self, capsys):
        out = run_cli(
            capsys,
            "sweep", "--topology", "ring", "--variants", "weak", "fast",
            "-n", "8", "--reps", "2",
        )
        assert "backend=serial" in out
        assert "weak" in out and "fast" in out

    def test_sweep_parallel_matches_serial(self, capsys, tmp_path):
        import json

        argv = [
            "sweep", "--topology", "ring", "--variants", "weak",
            "-n", "8", "--reps", "2", "--seed", "3",
        ]
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        run_cli(capsys, *argv, "--json", str(serial_path))
        out = run_cli(
            capsys, *argv, "--workers", "2", "--json", str(parallel_path)
        )
        assert "backend=process[2]" in out
        serial = json.loads(serial_path.read_text())
        parallel = json.loads(parallel_path.read_text())
        assert serial["series"] == parallel["series"]

    def test_fig5_workers_flag_parses(self):
        args = build_parser().parse_args(["fig5", "--workers", "4"])
        assert args.workers == 4

    def test_unwritable_json_path_is_clean_error(self, capsys):
        code = main(
            ["sweep", "--topology", "ring", "--variants", "weak",
             "-n", "8", "--reps", "1", "--json", "/nonexistent-dir/out.json"]
        )
        assert code == 2
        assert "cannot write results" in capsys.readouterr().err

    def test_sweep_with_faults(self, capsys):
        out = run_cli(
            capsys,
            "sweep", "--topology", "line", "--variants", "weak", "fast",
            "--faults", "none", "split_brain", "-n", "10", "--reps", "2",
        )
        assert "weak@split_brain" in out
        assert "fast@split_brain" in out
        assert "post-heal" in out

    def test_sweep_faults_flags_censored_series(self, capsys):
        # A horizon this short converges nothing: every series must be
        # flagged instead of reporting silently optimistic means.
        out = run_cli(
            capsys,
            "sweep", "--topology", "line", "--variants", "weak",
            "--faults", "none", "split_brain", "-n", "10", "--reps", "2",
            "--max-time", "2.0",
        )
        assert "conv" in out
        assert "0% !" in out
        assert "never converged" in out

    def test_campaign_run_smoke(self, capsys):
        out = run_cli(capsys, "campaign", "run", "smoke", "--reps", "1")
        assert "campaign 'smoke'" in out
        assert "weak@split_brain" in out
        assert "backend=serial" in out

    def test_campaign_reps_defaults_to_each_campaigns_fidelity(self):
        from repro.experiments.figures import build_campaign

        # No --reps on the command line leaves the choice to the
        # campaign: `figures` must match `repro fig5`'s 120, not a
        # CLI-wide 40.
        args = build_parser().parse_args(["campaign", "run", "figures"])
        assert args.reps is None
        campaign = build_campaign("figures", reps=args.reps, seed=1)
        assert campaign.plans["fig5"].reps == 120
        assert build_campaign("figures", reps=7).plans["fig5"].reps == 7

    def test_campaign_interrupt_resume_status_roundtrip(self, capsys, tmp_path):
        import json

        checkpoint = tmp_path / "cp.jsonl"
        full = tmp_path / "full.json"
        resumed = tmp_path / "resumed.json"
        base = ["campaign", "run", "smoke", "--reps", "1", "--seed", "3"]
        run_cli(capsys, *base, "--json", str(full))
        out = run_cli(
            capsys, *base, "--checkpoint", str(checkpoint), "--limit", "3"
        )
        assert "paused: 3/6" in out
        assert "repro campaign resume smoke" in out
        status = run_cli(capsys, "campaign", "status", "--checkpoint", str(checkpoint))
        assert "3/6 trials checkpointed" in status
        out = run_cli(
            capsys,
            "campaign", "resume", "smoke", "--reps", "1", "--seed", "3",
            "--checkpoint", str(checkpoint), "--json", str(resumed),
        )
        assert "3 trials loaded, 3 executed" in out
        assert json.loads(full.read_text()) == json.loads(resumed.read_text())

    def test_campaign_run_with_checkpoint_is_resumable_without_limit(
        self, capsys, tmp_path
    ):
        checkpoint = tmp_path / "cp.jsonl"
        base = [
            "campaign", "run", "smoke", "--reps", "1", "--seed", "3",
            "--checkpoint", str(checkpoint),
        ]
        run_cli(capsys, *base)
        out = run_cli(capsys, *base)  # re-running skips everything
        assert "6 trials loaded, 0 executed" in out

    def test_sweep_faulted_parallel_matches_serial(self, capsys, tmp_path):
        import json

        argv = [
            "sweep", "--topology", "line", "--variants", "weak",
            "--faults", "split_brain", "-n", "8", "--reps", "2", "--seed", "3",
        ]
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        run_cli(capsys, *argv, "--json", str(serial_path))
        run_cli(capsys, *argv, "--workers", "2", "--json", str(parallel_path))
        serial = json.loads(serial_path.read_text())
        parallel = json.loads(parallel_path.read_text())
        assert serial["series"] == parallel["series"]
        assert serial["params"]["faults"] == ["split_brain"]


def assert_one_line_error(capsys, argv, needle) -> None:
    """The CLI contract for bad input: exit 2, one stderr line, no traceback."""
    code = main(argv)
    err = capsys.readouterr().err
    assert code == 2
    assert needle in err
    assert err.startswith("error: ")
    assert len(err.strip().splitlines()) == 1


class TestFailurePaths:
    def test_unknown_topology_key(self, capsys):
        assert_one_line_error(
            capsys,
            ["sweep", "--topology", "moebius", "-n", "8", "--reps", "1"],
            "unknown topology 'moebius'",
        )

    def test_unknown_demand_key(self, capsys):
        assert_one_line_error(
            capsys,
            ["sweep", "--demand", "psychic", "-n", "8", "--reps", "1"],
            "unknown demand 'psychic'",
        )

    def test_unknown_variant_key(self, capsys):
        assert_one_line_error(
            capsys,
            ["sweep", "--variants", "quantum", "-n", "8", "--reps", "1"],
            "unknown variant 'quantum'",
        )

    def test_malformed_faults_spec(self, capsys):
        assert_one_line_error(
            capsys,
            ["sweep", "--topology", "ring", "-n", "8", "--reps", "1",
             "--faults", "gremlins"],
            "unknown fault regime 'gremlins'",
        )

    def test_duplicate_faults_spec(self, capsys):
        assert_one_line_error(
            capsys,
            ["sweep", "--topology", "ring", "-n", "8", "--reps", "1",
             "--faults", "split_brain", "split_brain"],
            "duplicate fault regimes",
        )

    def test_workers_zero_rejected(self, capsys):
        assert_one_line_error(
            capsys,
            ["sweep", "--topology", "ring", "--variants", "weak",
             "-n", "8", "--reps", "1", "--workers", "0"],
            "--workers must be >= 1",
        )

    def test_workers_negative_rejected(self, capsys):
        assert_one_line_error(
            capsys,
            ["sweep", "--topology", "ring", "--variants", "weak",
             "-n", "8", "--reps", "1", "--workers", "-2"],
            "--workers must be >= 1",
        )

    def test_unknown_campaign_name(self, capsys):
        assert_one_line_error(
            capsys,
            ["campaign", "run", "conquest", "--reps", "1"],
            "unknown campaign 'conquest'",
        )

    def test_campaign_resume_requires_checkpoint(self, capsys):
        assert_one_line_error(
            capsys,
            ["campaign", "resume", "smoke", "--reps", "1"],
            "requires --checkpoint",
        )

    def test_campaign_resume_missing_checkpoint_file(self, capsys, tmp_path):
        assert_one_line_error(
            capsys,
            ["campaign", "resume", "smoke", "--reps", "1",
             "--checkpoint", str(tmp_path / "never.jsonl")],
            "no checkpoint at",
        )

    def test_campaign_limit_requires_checkpoint(self, capsys):
        assert_one_line_error(
            capsys,
            ["campaign", "run", "smoke", "--reps", "1", "--limit", "2"],
            "--limit without --checkpoint",
        )

    def test_campaign_status_missing_file(self, capsys, tmp_path):
        assert_one_line_error(
            capsys,
            ["campaign", "status", "--checkpoint", str(tmp_path / "never.jsonl")],
            "no checkpoint at",
        )
