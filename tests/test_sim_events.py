"""Tests for event primitives (repro.sim.events)."""

from __future__ import annotations

from repro.sim.events import (
    DEFAULT_PRIORITY,
    LATE_PRIORITY,
    Event,
    EventHandle,
    next_sequence,
)


class TestSequence:
    def test_monotonically_increasing(self):
        values = [next_sequence() for _ in range(100)]
        assert values == sorted(values)
        assert len(set(values)) == 100


class TestEventHandleOrdering:
    def test_time_dominates(self):
        early = EventHandle(time=1.0, priority=99, seq=99)
        late = EventHandle(time=2.0, priority=0, seq=0)
        assert early < late

    def test_priority_breaks_time_ties(self):
        low = EventHandle(time=1.0, priority=0, seq=99)
        high = EventHandle(time=1.0, priority=10, seq=0)
        assert low < high

    def test_sequence_breaks_full_ties(self):
        first = EventHandle(time=1.0, priority=0, seq=1)
        second = EventHandle(time=1.0, priority=0, seq=2)
        assert first < second

    def test_late_priority_after_default(self):
        normal = EventHandle(time=1.0, priority=DEFAULT_PRIORITY, seq=5)
        late = EventHandle(time=1.0, priority=LATE_PRIORITY, seq=1)
        assert normal < late


class TestEvent:
    def test_fire_invokes_callback_with_args(self):
        got = []
        event = Event(
            handle=EventHandle(1.0, 0, next_sequence()),
            callback=lambda *args: got.append(args),
            args=(1, "two"),
        )
        event.fire()
        assert got == [(1, "two")]

    def test_sort_key_matches_handle(self):
        handle = EventHandle(3.0, 2, 7)
        event = Event(handle=handle, callback=lambda: None, args=())
        assert event.sort_key == (3.0, 2, 7)

    def test_event_comparison_uses_sort_key(self):
        a = Event(EventHandle(1.0, 0, 1), lambda: None, ())
        b = Event(EventHandle(1.0, 0, 2), lambda: None, ())
        assert a < b

    def test_label_default_empty(self):
        event = Event(EventHandle(1.0, 0, 1), lambda: None, ())
        assert event.label == ""
        assert event.cancelled is False
