"""Tests for the declarative experiment pipeline (plan + backends)."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ExperimentError, ExperimentSizeWarning
from repro.experiments.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    resolve_backend,
)
from repro.experiments.harness import rep_seeds, run_experiment
from repro.experiments.plan import ExperimentPlan, ScenarioSpec, run_plan, run_scenario
from repro.experiments.scenarios import DEMANDS, TOPOLOGIES, VARIANTS
from repro.core.variants import fast_consistency, weak_consistency
from repro.demand.static import UniformRandomDemand
from repro.topology.simple import ring


def small_plan(**overrides) -> ExperimentPlan:
    defaults = dict(
        name="t",
        topology="ring",
        demand="uniform",
        variants=("weak", "fast"),
        n=10,
        reps=3,
        seed=5,
    )
    defaults.update(overrides)
    return ExperimentPlan(**defaults)


class TestPlanExpansion:
    def test_expansion_counts(self):
        plan = small_plan(reps=4, variants=("weak", "ordered", "fast"))
        specs = plan.scenarios()
        assert len(specs) == plan.total_trials() == 12
        assert [s.rep for s in specs] == [r for r in range(4) for _ in range(3)]
        assert [s.variant for s in specs[:3]] == ["weak", "ordered", "fast"]

    def test_variants_paired_within_rep(self):
        specs = small_plan().scenarios()
        by_rep = {}
        for spec in specs:
            by_rep.setdefault(spec.rep, []).append(spec)
        for rep, group in by_rep.items():
            seeds = rep_seeds(5, rep)
            for spec in group:
                assert spec.topo_seed == seeds.topology
                assert spec.demand_seed == seeds.demand
                assert spec.sim_seed == seeds.simulator
                assert spec.origin_seed == seeds.origin

    def test_knobs_propagate_to_specs(self):
        plan = small_plan(max_time=33.0, top_fraction=0.2, loss=0.01)
        for spec in plan.scenarios():
            assert spec.max_time == 33.0
            assert spec.top_fraction == 0.2
            assert spec.loss == 0.01

    def test_validation_rejects_bad_plans(self):
        with pytest.raises(ExperimentError):
            small_plan(reps=0).scenarios()
        with pytest.raises(ExperimentError):
            small_plan(variants=()).scenarios()
        with pytest.raises(ExperimentError):
            small_plan(variants=("weak", "weak")).scenarios()
        with pytest.raises(ExperimentError):
            small_plan(topology="moebius").scenarios()
        with pytest.raises(ExperimentError):
            small_plan(demand="psychic").scenarios()
        with pytest.raises(ExperimentError):
            small_plan(variants=("quantum",)).scenarios()

    def test_scenario_spec_is_picklable(self):
        spec = small_plan().scenarios()[0]
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert run_scenario(clone).time_all == run_scenario(spec).time_all


class TestBackendDeterminism:
    def test_process_pool_bit_identical_to_serial(self):
        plan = small_plan(topology="ba", n=12, reps=2)
        serial = plan.run(SerialBackend())
        with ProcessPoolBackend(max_workers=2, chunksize=1) as backend:
            parallel = plan.run(backend)
        assert serial.to_dict()["series"] == parallel.to_dict()["series"]
        assert serial.notes["backend"] == "serial"
        assert parallel.notes["backend"] == "process[2]"

    def test_plan_matches_legacy_run_experiment(self):
        plan = small_plan(topology="ring", reps=2)
        via_plan = plan.run()
        legacy = run_experiment(
            name="t",
            variants={"weak": weak_consistency(), "fast": fast_consistency()},
            topology_factory=lambda s: ring(10),
            demand_factory=lambda topo, s: UniformRandomDemand(0.0, 100.0, seed=s),
            reps=2,
            seed=5,
        )
        assert via_plan.to_dict()["series"] == legacy.to_dict()["series"]

    def test_run_plan_alias(self):
        plan = small_plan(reps=1)
        assert run_plan(plan).to_dict() == plan.run().to_dict()

    def test_plan_reproducible(self):
        plan = small_plan(reps=2)
        assert plan.run().to_dict() == plan.run().to_dict()


class TestRegistryCompleteness:
    """Every registry key must build and run through a ScenarioSpec."""

    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_every_topology_runs(self, topology):
        plan = ExperimentPlan(
            name="t", topology=topology, demand="uniform",
            variants=("fast",), n=9, reps=1, seed=3, max_time=120.0,
        )
        result = plan.run()
        trial = result.series["fast"].trials[0]
        assert trial.n_nodes >= 4
        assert trial.messages > 0

    @pytest.mark.parametrize("demand", sorted(DEMANDS))
    def test_every_demand_runs(self, demand):
        # grid carries node positions, which "two-valleys" requires.
        plan = ExperimentPlan(
            name="t", topology="grid", demand=demand,
            variants=("fast",), n=9, reps=1, seed=3, max_time=120.0,
        )
        trial = plan.run().series["fast"].trials[0]
        assert trial.time_top1 is not None

    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_every_variant_runs(self, variant):
        plan = ExperimentPlan(
            name="t", topology="ring", demand="uniform",
            variants=(variant,), n=8, reps=1, seed=3, max_time=120.0,
        )
        trial = plan.run().series[variant].trials[0]
        assert trial.time_all is not None


class TestEffectiveSize:
    def test_non_square_grid_warns_and_records_effective_n(self):
        plan = ExperimentPlan(
            name="t", topology="grid", demand="uniform",
            variants=("weak",), n=10, reps=1, seed=1, max_time=120.0,
        )
        with pytest.warns(ExperimentSizeWarning):
            result = plan.run()
        assert result.params["effective_n"] == 9
        assert result.series["weak"].trials[0].n_nodes == 9

    def test_square_grid_does_not_warn(self):
        import warnings

        plan = ExperimentPlan(
            name="t", topology="grid", demand="uniform",
            variants=("weak",), n=9, reps=1, seed=1, max_time=120.0,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", ExperimentSizeWarning)
            result = plan.run()
        assert "effective_n" not in result.params
        assert result.series["weak"].trials[0].n_nodes == 9


class TestResolveBackend:
    def test_none_and_small_counts_are_serial(self):
        for spec in (None, 0, 1, "serial"):
            assert isinstance(resolve_backend(spec), SerialBackend)

    def test_counts_above_one_use_process_pool(self):
        backend = resolve_backend(3)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.max_workers == 3
        assert resolve_backend("process:4").max_workers == 4

    def test_backend_instances_pass_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_backends_satisfy_protocol(self):
        assert isinstance(SerialBackend(), ExecutionBackend)
        assert isinstance(ProcessPoolBackend(max_workers=2), ExecutionBackend)

    def test_malformed_specs_rejected(self):
        with pytest.raises(ExperimentError):
            resolve_backend("warp-drive")
        with pytest.raises(ExperimentError):
            resolve_backend("process:many")
        with pytest.raises(ExperimentError):
            resolve_backend(-4)
        with pytest.raises(ExperimentError):
            ProcessPoolBackend(max_workers=0)

    def test_process_zero_string_rejected_like_the_cli(self):
        # `resolve_backend(0)` staying serial is a documented API
        # convenience, but the *string* form spells out a pool request:
        # 'process:0' must fail exactly like `--workers 0` does.
        with pytest.raises(ExperimentError):
            resolve_backend("process:0")
        with pytest.raises(ExperimentError):
            resolve_backend("process:-3")
        assert isinstance(resolve_backend(0), SerialBackend)


class TestChunkLayout:
    """Regression: the splitting policy must never starve the pool."""

    def test_layout_covers_total_exactly(self):
        backend = ProcessPoolBackend(max_workers=2)
        for total in (0, 1, 2, 3, 7, 8, 9, 17, 64):
            layout = backend.chunk_layout(total)
            assert sum(layout) == total

    def test_small_grids_split_one_scenario_per_task(self):
        backend = ProcessPoolBackend(max_workers=4)
        assert backend.chunk_layout(3) == [1, 1, 1]
        assert backend.chunk_layout(4) == [1, 1, 1, 1]
        assert backend.chunk_layout(5) == [1, 1, 1, 1, 1]

    def test_grid_never_collapses_into_fewer_chunks_than_workers(self):
        for workers in (2, 3, 4, 8):
            backend = ProcessPoolBackend(max_workers=workers)
            for total in range(1, 4 * workers + 2):
                layout = backend.chunk_layout(total)
                assert len(layout) >= min(total, workers), (
                    f"workers={workers} total={total} layout={layout}"
                )

    def test_explicit_chunksize_capped_to_keep_every_worker_busy(self):
        # chunksize=100 with 12 scenarios used to ship one oversized
        # chunk that serialised the whole grid on a single worker.
        backend = ProcessPoolBackend(max_workers=4, chunksize=100)
        layout = backend.chunk_layout(12)
        assert max(layout) == 3  # ceil(12 / 4)
        assert len(layout) == 4

    def test_modest_explicit_chunksize_is_honoured(self):
        backend = ProcessPoolBackend(max_workers=2, chunksize=3)
        assert backend.chunk_layout(12) == [3, 3, 3, 3]

    def test_invariant_holds_for_explicit_chunksizes_too(self):
        # chunksize=2 with 5 scenarios on 4 workers used to yield
        # [2, 2, 1] — three chunks, one idle worker.
        assert ProcessPoolBackend(max_workers=4, chunksize=2).chunk_layout(5) == [
            1, 1, 1, 1, 1,
        ]
        for workers in (2, 3, 4):
            for chunksize in (1, 2, 3, 5, 100):
                backend = ProcessPoolBackend(max_workers=workers, chunksize=chunksize)
                for total in range(1, 4 * workers + 2):
                    layout = backend.chunk_layout(total)
                    assert sum(layout) == total
                    assert len(layout) >= min(total, workers), (
                        f"workers={workers} chunksize={chunksize} "
                        f"total={total} layout={layout}"
                    )

    def test_default_batches_about_four_chunks_per_worker(self):
        backend = ProcessPoolBackend(max_workers=2)
        assert backend.chunk_layout(64) == [8] * 8


class TestFigureCdfFrontEnd:
    def test_unregistered_m_falls_back_to_factory_harness(self):
        from repro.experiments.figures import figure_cdf

        result = figure_cdf(n=10, reps=1, seed=2, m=4)
        assert result.experiment.params["m"] == 4
        assert set(result.experiment.series) == {"weak", "ordered", "fast"}

    def test_plan_constructor_rejects_unregistered_m(self):
        from repro.experiments.figures import figure_cdf_plan

        with pytest.raises(ExperimentError):
            figure_cdf_plan(10, m=4)
