"""Chaos harness: one FaultSchedule, three execution worlds.

The same declarative schedule must (a) replay in the simulator through
``FaultProcess``, (b) replay against a live queue-mode cluster through
``FaultReplayer``, and (c) travel over a control socket into a
spawn-per-node TCP cluster.  These tests pin the cross-world contract:
identical applied/skipped accounting, clean client errors while a
target is crashed, and convergence after heal.
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.errors import ReplicationError
from repro.experiments.scenarios import build_system
from repro.faults import FaultProcess, FaultSchedule
from repro.faults.generators import rolling_restart
from repro.faults.schedule import (
    corrupt_frame,
    demand_shock,
    latency_shock,
    node_down,
    node_up,
    packet_duplicate,
    packet_reorder,
)
from repro.runtime.cluster import ReplicaCluster
from repro.runtime.tcp import SyncFrameChannel
from repro.sim.trace import Tracer
from repro.topology.simple import line


def _wait_chaos_done(cluster, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = cluster.chaos_status()
        if status is not None and status["done"]:
            return status
        time.sleep(0.02)
    raise AssertionError(f"chaos never finished: {cluster.chaos_status()}")


class TestFaultTraceGuards:
    class BombTracer(Tracer):
        def record(self, time, category, **fields):
            raise AssertionError(
                f"record() called for {category!r} despite being disabled"
            )

    def test_fault_apply_and_skip_records_are_guarded(self):
        # With the fault categories disabled, replaying events must
        # never even *call* record() — the wants() guard keeps fault
        # injection zero-cost when tracing is off.
        system = build_system(topology="line", n=4, variant="weak", seed=3)
        process = FaultProcess(
            system, FaultSchedule(events=(node_down(1.0, 0),))
        )
        bomb = self.BombTracer()
        bomb.enable_only(["something-else"])
        system.runtime.sim.trace = bomb
        process._apply(node_down(1.0, 0))
        # An unabsorbable demand shock exercises the skip branch.
        process._apply(demand_shock(1.5, (0,), 2.0))
        assert process.stats == {"node_down": 1}
        assert len(process.skipped) == 1


class TestScheduleParity:
    def test_sim_and_live_apply_identical_schedules(self):
        # The very same schedule object, replayed in virtual time and
        # on the wall clock, must account every event identically.
        topology = line(4)
        schedule = rolling_restart(topology, seed=5)

        system = build_system(topology="line", n=4, variant="weak", seed=5)
        process = FaultProcess(system, schedule)
        system.start()
        system.run_until(schedule.duration + 1.0)
        sim_stats = dict(process.stats)

        with ReplicaCluster(topology, seed=5, time_scale=0.01) as cluster:
            replayer = cluster.inject_faults(schedule)
            status = _wait_chaos_done(cluster)
            live_stats = dict(replayer.stats)
        assert sim_stats == live_stats
        assert status["applied"] == len(schedule.events)
        assert status["skipped"] == 0
        assert not process.skipped

    def test_unabsorbable_demand_shock_skipped_in_both_worlds(self):
        # A cluster built without a fault schedule never wrapped its
        # demand model, so an injected shock cannot land — it must be
        # counted as skipped, exactly like the simulator does.
        topology = line(3)
        schedule = FaultSchedule(
            events=(demand_shock(0.1, (0, 1), 3.0),), name="shock-only"
        )
        with ReplicaCluster(topology, seed=2, time_scale=0.01) as cluster:
            replayer = cluster.inject_faults(schedule)
            status = _wait_chaos_done(cluster)
            assert status["skipped"] == 1
            assert status["applied"] == 0
            assert [e.action for e in replayer.skipped] == ["demand_shock"]


class TestCrashDuringClientCalls:
    def test_put_to_crashed_node_raises_cleanly_and_fast(self):
        topology = line(3)
        schedule = FaultSchedule(
            events=(node_down(0.1, 1), node_up(5.0, 1)), name="blip"
        )
        with ReplicaCluster(topology, seed=4, time_scale=0.01) as cluster:
            assert cluster.put("k", "v0", node=1)
            cluster.inject_faults(schedule)
            # Wait for the crash to land, then hammer the dead node:
            # every put must fail with a clean error in bounded time,
            # not hang until the 30 s call timeout.
            deadline = time.monotonic() + 5.0
            refused = False
            while time.monotonic() < deadline and not refused:
                started = time.monotonic()
                try:
                    cluster.put("k", "v1", node=1)
                except ReplicationError as exc:
                    assert "down" in str(exc)
                    assert time.monotonic() - started < 5.0
                    refused = True
                time.sleep(0.01)
            assert refused, "crash never surfaced to the client"
            # Other replicas keep serving throughout.
            update = cluster.put("k", "v2", node=0)
            _wait_chaos_done(cluster)
            # After the scheduled recovery the node serves again.
            assert cluster.wait_replicated(update.uid, timeout=10.0)
            cluster.put("k", "v3", node=1)

    def test_close_fails_pending_calls_instead_of_hanging(self):
        cluster = ReplicaCluster(line(3), seed=1, time_scale=0.01).start()
        # White-box: a call future that never gets a loop-side result
        # (the scenario: close() racing an in-flight client call).
        future = cluster._register_pending()
        cluster.close()
        started = time.monotonic()
        with pytest.raises(ReplicationError):
            future.result(timeout=5.0)
        assert time.monotonic() - started < 2.0

    def test_calls_after_close_raise(self):
        cluster = ReplicaCluster(line(3), seed=1, time_scale=0.01).start()
        cluster.close()
        with pytest.raises(ReplicationError):
            cluster.put("k", "v")
        with pytest.raises(ReplicationError):
            cluster.get("k")


class TestTcpCluster:
    def test_three_processes_replicate_and_survive_chaos(self):
        topology = line(3)
        schedule = FaultSchedule(
            events=(node_down(0.5, 1), node_up(3.0, 1)), name="blip"
        )
        with ReplicaCluster(
            topology, seed=7, time_scale=0.02, transport="tcp"
        ) as cluster:
            # Plain replication across OS processes.
            update = cluster.put("key", "v1", node=0)
            assert cluster.wait_replicated(update.uid, timeout=20.0)
            assert cluster.get("key", node=2) == "v1"
            assert cluster.replication_latency(update.uid) is not None

            # Chaos over the control socket, like `repro chaos` does.
            sock = socket.create_connection(cluster.control_address, timeout=5.0)
            channel = SyncFrameChannel(sock)
            try:
                channel.send(("topology?",))
                kind, remote_topology = channel.recv(timeout=5.0)
                assert kind == "topology"
                assert remote_topology.num_nodes == 3
                channel.send(("chaos", schedule))
                reply = channel.recv(timeout=5.0)
                assert reply[0] == "chaos-ack"
                assert reply[1]["events"] == 2
            finally:
                channel.close()
            _wait_chaos_done(cluster, timeout=30.0)

            # Post-heal convergence: a fresh write still reaches all.
            update = cluster.put("key", "v2", node=2)
            assert cluster.wait_replicated(update.uid, timeout=20.0)
            assert cluster.get("key", node=1) == "v2"

            stats = cluster.stats()
            assert stats["transport"] == "tcp"
            assert stats["chaos"]["applied"] == 2


class TestPacketFaultParity:
    def test_all_four_packet_actions_apply_in_sim_and_live(self):
        # ISSUE gate: the same schedule object carrying every packet
        # action accounts identically in virtual time (FaultProcess)
        # and on the wall clock (FaultReplayer over the queue cluster).
        topology = line(3)
        schedule = FaultSchedule(
            events=(
                latency_shock(0.2, 2.0, 1.0),
                packet_reorder(0.3, 0.5, 0.5, 1.0),
                packet_duplicate(0.4, 0.5, 1.0),
                corrupt_frame(0.5, 0.2, 1.0),
            ),
            name="packet-mix",
        ).validate()

        system = build_system(topology="line", n=3, variant="weak", seed=9)
        process = FaultProcess(system, schedule)
        system.start()
        system.run_until(schedule.duration + 1.0)
        sim_stats = dict(process.stats)

        with ReplicaCluster(topology, seed=9, time_scale=0.01) as cluster:
            replayer = cluster.inject_faults(schedule)
            status = _wait_chaos_done(cluster)
            live_stats = dict(replayer.stats)

        expected = {
            "latency_shock": 1,
            "packet_reorder": 1,
            "packet_duplicate": 1,
            "corrupt_frame": 1,
        }
        assert sim_stats == expected
        assert live_stats == expected
        assert status["applied"] == 4
        assert status["skipped"] == 0
        assert not process.skipped

    def test_packet_windows_meter_on_live_transport(self):
        # Probability-1 duplication over a converging put: the queue
        # transport must suppress (and meter) at least one duplicate.
        topology = line(3)
        schedule = FaultSchedule(
            events=(packet_duplicate(0.0, 1.0, 2000.0),), name="dup"
        )
        with ReplicaCluster(topology, seed=6, time_scale=0.01) as cluster:
            cluster.inject_faults(schedule)
            time.sleep(0.05)  # let the t=0 window arm
            update = cluster.put("k", "v", node=0)
            assert cluster.wait_replicated(update.uid, timeout=20.0)
            counters = cluster.transport.counters
            assert counters.duplicates_suppressed > 0


class TestReplayerCancelledOnClose:
    def test_close_disarms_pending_fault_timers(self):
        # Regression: a replay cancelled mid-schedule must not leave
        # armed timers behind — close() cancels them, so a later
        # explicit cancel() finds nothing pending.
        topology = line(3)
        schedule = FaultSchedule(
            events=(node_down(500.0, 1), node_up(1000.0, 1)), name="later"
        )
        cluster = ReplicaCluster(topology, seed=3, time_scale=0.01).start()
        replayer = cluster.inject_faults(schedule)
        assert replayer.applied == 0
        cluster.close()
        assert replayer.cancel() == 0
        assert replayer.applied == 0
        assert not replayer.skipped


class TestControlAuth:
    def test_unauthenticated_and_wrong_token_refused(self):
        with ReplicaCluster(
            line(3), seed=2, time_scale=0.01, control_port=0, token="hush"
        ) as cluster:
            sock = socket.create_connection(cluster.control_address, timeout=5.0)
            channel = SyncFrameChannel(sock)
            try:
                # No auth yet: every frame is refused with one error line.
                channel.send(("topology?",))
                reply = channel.recv(timeout=5.0)
                assert reply[0] == "error"
                assert "unauthenticated" in reply[1]
                assert "\n" not in reply[1]
                # A wrong token does not authenticate the connection.
                channel.send(("auth", "wrong"))
                reply = channel.recv(timeout=5.0)
                assert reply[0] == "error"
                # The right token unlocks the same connection.
                channel.send(("auth", "hush"))
                channel.send(("topology?",))
                kind, topology = channel.recv(timeout=5.0)
                assert kind == "topology"
                assert topology.num_nodes == 3
            finally:
                channel.close()

    def test_tokenless_cluster_accepts_plain_clients(self):
        with ReplicaCluster(
            line(3), seed=2, time_scale=0.01, control_port=0
        ) as cluster:
            sock = socket.create_connection(cluster.control_address, timeout=5.0)
            channel = SyncFrameChannel(sock)
            try:
                channel.send(("topology?",))
                kind, _ = channel.recv(timeout=5.0)
                assert kind == "topology"
            finally:
                channel.close()


class TestHubFailover:
    def test_kill_hub_mid_traffic_is_survivable(self):
        # The tentpole's no-SPOF claim: kill the primary hub while a
        # 3-process TCP cluster is replicating; nodes re-register with
        # the standby and a fresh put still converges everywhere.
        topology = line(3)
        with ReplicaCluster(
            topology,
            seed=11,
            time_scale=0.02,
            transport="tcp",
            standby_hubs=1,
            token="hush",
        ) as cluster:
            assert len(cluster.hub_addresses) == 2
            update = cluster.put("k", "v1", node=0)
            assert cluster.wait_replicated(update.uid, timeout=20.0)

            cluster.kill_hub()

            # The control channel flaps while children re-register with
            # the standby; client calls fail fast and cleanly until the
            # failover heals, then traffic flows again.
            deadline = time.monotonic() + 15.0
            update = None
            while update is None:
                try:
                    update = cluster.put("k", "v2", node=1)
                except ReplicationError:
                    assert time.monotonic() < deadline, "failover never healed"
                    time.sleep(0.05)
            assert cluster.wait_replicated(update.uid, timeout=20.0)
            assert cluster.get("k", node=2) == "v2"
            stats = cluster.stats()
            assert stats["transport"] == "tcp"

    def test_kill_hub_refused_without_standby(self):
        with ReplicaCluster(
            line(3), seed=4, time_scale=0.02, transport="tcp", standby_hubs=0
        ) as cluster:
            with pytest.raises(ReplicationError, match="standby"):
                cluster.kill_hub()
