"""Tests for timestamps and summary vectors (repro.replica)."""

from __future__ import annotations

import pytest

from repro.errors import ReplicationError
from repro.replica.timestamps import ZERO, LamportClock, Timestamp
from repro.replica.versions import ENTRY_BYTES, SummaryVector, elementwise_min


class TestTimestamp:
    def test_total_order(self):
        assert Timestamp(1, 0) < Timestamp(2, 0)
        assert Timestamp(1, 0) < Timestamp(1, 1)  # node breaks ties
        assert Timestamp(3, 5) > Timestamp(2, 9)

    def test_zero_is_minimal(self):
        assert ZERO <= Timestamp(0, 0)
        assert ZERO < Timestamp(1, 0)

    def test_invalid_values_rejected(self):
        with pytest.raises(ReplicationError):
            Timestamp(-1, 0)
        with pytest.raises(ReplicationError):
            Timestamp(0, -2)

    def test_next_for(self):
        ts = Timestamp(4, 2).next_for(7)
        assert ts == Timestamp(5, 7)


class TestLamportClock:
    def test_tick_monotonic(self):
        clock = LamportClock(3)
        a = clock.tick()
        b = clock.tick()
        assert a < b
        assert a.node == b.node == 3

    def test_witness_advances(self):
        clock = LamportClock(0)
        clock.witness(Timestamp(10, 5))
        assert clock.tick() == Timestamp(11, 0)

    def test_witness_never_regresses(self):
        clock = LamportClock(0)
        clock.tick()
        clock.tick()
        clock.witness(Timestamp(1, 9))
        assert clock.counter == 2

    def test_cross_clock_causality(self):
        a, b = LamportClock(0), LamportClock(1)
        t1 = a.tick()
        b.witness(t1)
        t2 = b.tick()
        assert t1 < t2

    def test_peek_does_not_advance(self):
        clock = LamportClock(0)
        clock.tick()
        assert clock.peek().counter == 1
        assert clock.peek().counter == 1


class TestSummaryVector:
    def test_empty_vector(self):
        vec = SummaryVector()
        assert vec.get(5) == 0
        assert len(vec) == 0
        assert vec.total_writes() == 0

    def test_construction_drops_zero_entries(self):
        vec = SummaryVector({1: 0, 2: 3})
        assert len(vec) == 1
        assert vec.get(2) == 3

    def test_negative_entry_rejected(self):
        with pytest.raises(ReplicationError):
            SummaryVector({1: -1})

    def test_covers(self):
        vec = SummaryVector({1: 3})
        assert vec.covers(1, 1) and vec.covers(1, 3)
        assert not vec.covers(1, 4)
        assert not vec.covers(2, 1)
        with pytest.raises(ReplicationError):
            vec.covers(1, 0)

    def test_advance_must_be_contiguous(self):
        vec = SummaryVector()
        vec.advance(1, 1)
        vec.advance(1, 2)
        with pytest.raises(ReplicationError):
            vec.advance(1, 4)
        with pytest.raises(ReplicationError):
            vec.advance(1, 2)  # replay

    def test_merge_elementwise_max(self):
        a = SummaryVector({1: 3, 2: 1})
        b = SummaryVector({1: 2, 3: 5})
        a.merge(b)
        assert a.as_dict() == {1: 3, 2: 1, 3: 5}

    def test_dominates(self):
        a = SummaryVector({1: 3, 2: 2})
        b = SummaryVector({1: 2})
        assert a.dominates(b)
        assert not b.dominates(a)
        assert a.dominates(SummaryVector())

    def test_equality_and_hash(self):
        assert SummaryVector({1: 2}) == SummaryVector({1: 2})
        assert SummaryVector({1: 2}) != SummaryVector({1: 3})
        assert hash(SummaryVector({1: 2})) == hash(SummaryVector({1: 2}))

    def test_copy_is_independent(self):
        a = SummaryVector({1: 1})
        b = a.copy()
        b.advance(1, 2)
        assert a.get(1) == 1

    def test_size_bytes(self):
        assert SummaryVector({1: 2, 5: 9}).size_bytes() == 2 * ENTRY_BYTES

    def test_items_sorted(self):
        vec = SummaryVector({5: 1, 2: 3})
        assert list(vec.items()) == [(2, 3), (5, 1)]

    def test_repr(self):
        assert "2:3" in repr(SummaryVector({2: 3}))


class TestElementwiseMin:
    def test_min_across_vectors(self):
        vecs = [SummaryVector({1: 3, 2: 5}), SummaryVector({1: 2, 2: 7})]
        ack = elementwise_min(vecs)
        assert ack.as_dict() == {1: 2, 2: 5}

    def test_missing_origin_gives_zero(self):
        vecs = [SummaryVector({1: 3}), SummaryVector({2: 5})]
        ack = elementwise_min(vecs)
        assert ack.get(1) == 0
        assert ack.get(2) == 0

    def test_empty_input(self):
        assert len(elementwise_min([])) == 0
