"""Tests for graph analysis and power laws (repro.topology.analysis/.powerlaws)."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import TopologyError
from repro.topology.analysis import (
    DegreeStats,
    average_clustering,
    average_path_length,
    bfs_distances,
    clustering_coefficient,
    diameter,
    eccentricities,
    hop_pair_counts,
    radius,
    shortest_path,
    summarize,
)
from repro.topology.brite import BriteConfig, barabasi_albert
from repro.topology.graph import Topology
from repro.topology.powerlaws import (
    PowerLawFit,
    eigen_exponent,
    fit_power_law,
    hop_plot_exponent,
    outdegree_exponent,
    rank_exponent,
    verify_internet_like,
)
from repro.topology.simple import complete, grid, line, ring, star


class TestPathMetrics:
    def test_bfs_distances_on_line(self, line5):
        assert bfs_distances(line5, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_bfs_unknown_source(self, line5):
        with pytest.raises(TopologyError):
            bfs_distances(line5, 42)

    def test_shortest_path_endpoints(self, line5):
        assert shortest_path(line5, 0, 4) == [0, 1, 2, 3, 4]
        assert shortest_path(line5, 2, 2) == [2]

    def test_shortest_path_no_route(self):
        topo = Topology()
        topo.add_node(0)
        topo.add_node(1)
        with pytest.raises(TopologyError):
            shortest_path(topo, 0, 1)

    def test_diameter_radius(self, line5, ring6):
        assert diameter(line5) == 4
        assert radius(line5) == 2
        assert diameter(ring6) == 3
        assert diameter(complete(5)) == 1
        assert diameter(grid(3, 3)) == 4

    def test_eccentricities_require_connected(self):
        topo = Topology()
        topo.add_node(0)
        topo.add_node(1)
        with pytest.raises(TopologyError):
            eccentricities(topo)

    def test_average_path_length_line3(self):
        # distances: (0,1)=1 (0,2)=2 (1,2)=1 -> mean 4/3
        assert average_path_length(line(3)) == pytest.approx(4 / 3)

    def test_hop_pair_counts_cumulative(self, line5):
        counts = hop_pair_counts(line5)
        assert counts[0] == 5  # each node with itself
        assert counts[4] == 25  # all ordered pairs reachable
        assert all(counts[h] <= counts[h + 1] for h in range(4))


class TestDegreeAndClustering:
    def test_degree_stats(self, star5):
        stats = DegreeStats.of(star5)
        assert stats.minimum == 1
        assert stats.maximum == 4
        assert stats.mean == pytest.approx(8 / 5)

    def test_clustering_triangle(self, triangle):
        assert clustering_coefficient(triangle, 0) == 1.0
        assert average_clustering(triangle) == 1.0

    def test_clustering_star_is_zero(self, star5):
        assert clustering_coefficient(star5, 0) == 0.0
        assert average_clustering(star5) == 0.0

    def test_summarize_fields(self, ring6):
        info = summarize(ring6)
        assert info["nodes"] == 6
        assert info["edges"] == 6
        assert info["connected"] is True
        assert info["diameter"] == 3
        assert info["degree_mean"] == 2.0


class TestPowerLawFitting:
    def test_fit_recovers_exponent(self):
        xs = [1, 2, 3, 4, 5, 10, 20]
        ys = [3.0 * x**-1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(-1.5, abs=1e-9)
        assert fit.intercept == pytest.approx(math.log(3.0), abs=1e-9)
        assert abs(fit.correlation) == pytest.approx(1.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)

    def test_predict(self):
        fit = PowerLawFit(exponent=-1.0, intercept=math.log(10.0), correlation=-1.0, points=5)
        assert fit.predict(2.0) == pytest.approx(5.0)

    def test_nonpositive_points_filtered(self):
        fit = fit_power_law([0, 1, 2, 4], [5, 10, 5, 2.5])
        assert fit.points == 3

    def test_too_few_points_raises(self):
        with pytest.raises(TopologyError):
            fit_power_law([1], [1])

    def test_length_mismatch_raises(self):
        with pytest.raises(TopologyError):
            fit_power_law([1, 2], [1])


class TestInternetPowerLaws:
    @pytest.fixture(scope="class")
    def ba200(self):
        return barabasi_albert(BriteConfig(n=200, m=2), random.Random(13))

    def test_rank_exponent_negative_and_tight(self, ba200):
        fit = rank_exponent(ba200)
        assert fit.exponent < -0.3
        assert abs(fit.correlation) > 0.8

    def test_outdegree_exponent_negative(self, ba200):
        fit = outdegree_exponent(ba200)
        assert fit.exponent < -1.0

    def test_eigen_exponent_negative(self, ba200):
        fit = eigen_exponent(ba200, k=15)
        assert fit.exponent < 0

    def test_hop_plot_positive_exponent(self, ba200):
        fit = hop_plot_exponent(ba200)
        assert fit.exponent > 0  # more pairs within more hops

    def test_verify_internet_like_accepts_ba(self, ba200):
        fits = verify_internet_like(ba200, min_correlation=0.8)
        assert set(fits) == {"rank", "outdegree", "eigen"}

    def test_verify_rejects_uniform_topology(self):
        # A ring has a degenerate degree distribution; the outdegree law
        # cannot even be fitted (single degree value) -> TopologyError.
        with pytest.raises(TopologyError):
            verify_internet_like(ring(50))
