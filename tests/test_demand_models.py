"""Tests for demand models (repro.demand.base/.static/.field/.dynamic)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.demand.base import (
    DemandModel,
    demand_percentile,
    normalize_snapshot,
    validate_demand_value,
)
from repro.demand.dynamic import (
    FIG4_REPLICAS,
    FlashCrowdDemand,
    RandomWalkDemand,
    ScheduledDemand,
    paper_fig4_demand,
)
from repro.demand.field import SurfaceDemand, Valley, random_valleys, two_valley_field
from repro.demand.static import (
    SECTION2_REPLICAS,
    ConstantDemand,
    ExplicitDemand,
    UniformRandomDemand,
    ZipfDemand,
    paper_section2_demand,
)
from repro.errors import DemandError
from repro.topology.simple import grid


class TestBaseHelpers:
    def test_validate_rejects_negative(self):
        with pytest.raises(DemandError):
            validate_demand_value(-1.0, 0)

    def test_validate_rejects_nan_inf(self):
        with pytest.raises(DemandError):
            validate_demand_value(float("nan"), 0)
        with pytest.raises(DemandError):
            validate_demand_value(float("inf"), 0)

    def test_snapshot_and_ranked(self, slope_demand):
        snap = slope_demand.snapshot(range(5))
        assert snap == {0: 4.0, 1: 6.0, 2: 3.0, 3: 8.0, 4: 7.0}
        assert slope_demand.ranked(range(5)) == [3, 4, 1, 0, 2]

    def test_ranked_breaks_ties_by_id(self):
        model = ExplicitDemand({0: 5.0, 1: 5.0, 2: 9.0})
        assert model.ranked([0, 1, 2]) == [2, 0, 1]

    def test_top_fraction(self, slope_demand):
        assert slope_demand.top_fraction(list(range(5)), 0.2) == [3]
        assert slope_demand.top_fraction(list(range(5)), 0.4) == [3, 4]
        assert slope_demand.top_fraction(list(range(5)), 1.0) == [3, 4, 1, 0, 2]

    def test_top_fraction_bad_fraction(self, slope_demand):
        with pytest.raises(DemandError):
            slope_demand.top_fraction([0], 0.0)

    def test_total(self, slope_demand):
        assert slope_demand.total(range(5)) == 28.0

    def test_normalize_snapshot(self):
        out = normalize_snapshot({0: 1.0, 1: 3.0}, target_total=8.0)
        assert out == {0: 2.0, 1: 6.0}

    def test_normalize_all_zero_spreads_uniformly(self):
        out = normalize_snapshot({0: 0.0, 1: 0.0}, target_total=10.0)
        assert out == {0: 5.0, 1: 5.0}

    def test_percentile(self):
        snap = {i: float(i) for i in range(11)}  # 0..10
        assert demand_percentile(snap, 0) == 0.0
        assert demand_percentile(snap, 50) == 5.0
        assert demand_percentile(snap, 100) == 10.0
        with pytest.raises(DemandError):
            demand_percentile({}, 50)


class TestStaticModels:
    def test_explicit_default(self):
        model = ExplicitDemand({1: 2.0}, default=0.5)
        assert model.demand(1, 0.0) == 2.0
        assert model.demand(9, 0.0) == 0.5

    def test_constant(self):
        model = ConstantDemand(3.0)
        assert model.demand(0, 0.0) == model.demand(7, 99.0) == 3.0

    def test_uniform_random_in_range_and_stable(self):
        model = UniformRandomDemand(10.0, 20.0, seed=4)
        first = model.demand(3, 0.0)
        assert 10.0 <= first <= 20.0
        assert model.demand(3, 50.0) == first  # time-invariant
        # Query order must not matter.
        other = UniformRandomDemand(10.0, 20.0, seed=4)
        other.demand(7, 0.0)
        assert other.demand(3, 0.0) == first

    def test_uniform_random_invalid_range(self):
        with pytest.raises(DemandError):
            UniformRandomDemand(5.0, 1.0)

    def test_zipf_follows_rank_law(self):
        model = ZipfDemand(range(10), exponent=1.0, scale=100.0, seed=2)
        values = sorted((model.demand(n, 0) for n in range(10)), reverse=True)
        assert values[0] == 100.0
        assert values[1] == pytest.approx(50.0)
        assert values[9] == pytest.approx(10.0)

    def test_zipf_outside_population(self):
        model = ZipfDemand(range(3), seed=0)
        with pytest.raises(DemandError):
            model.demand(99, 0)

    def test_paper_section2_table(self):
        model = paper_section2_demand()
        assert model.demand(SECTION2_REPLICAS["D"], 0) == 8.0
        assert model.total(range(5)) == 28.0


class TestSurfaceDemand:
    def test_valley_contribution_peaks_at_center(self):
        valley = Valley(center=(0.0, 0.0), peak=100.0, radius=2.0)
        assert valley.contribution((0.0, 0.0)) == 100.0
        assert valley.contribution((2.0, 0.0)) < 100.0
        assert valley.contribution((20.0, 0.0)) < 1e-6

    def test_invalid_valley(self):
        with pytest.raises(DemandError):
            Valley(center=(0, 0), peak=-1.0, radius=1.0)
        with pytest.raises(DemandError):
            Valley(center=(0, 0), peak=1.0, radius=0.0)

    def test_surface_from_topology(self):
        topo = grid(5, 5)
        field = SurfaceDemand.from_topology(
            topo, [Valley(center=(0.0, 0.0), peak=50.0, radius=1.5)], base=1.0
        )
        assert field.demand(0, 0.0) == pytest.approx(51.0)
        # Far corner (4, 4) barely sees the valley.
        far = topo.num_nodes - 1
        assert field.demand(far, 0.0) == pytest.approx(1.0, abs=0.1)

    def test_surface_unknown_node(self):
        field = SurfaceDemand({0: (0.0, 0.0)}, [], base=1.0)
        with pytest.raises(DemandError):
            field.demand(9, 0.0)

    def test_two_valley_field_creates_two_hotspots(self):
        topo = grid(9, 9)
        field = two_valley_field(topo, plane_size=8.0, peak=100.0, base=1.0)
        snap = field.snapshot(topo.nodes)
        hot = [n for n, v in snap.items() if v > 50.0]
        # Hot nodes exist near both (2,2) and (6,6).
        assert any(topo.position(n) == (2.0, 2.0) for n in hot)
        assert any(topo.position(n) == (6.0, 6.0) for n in hot)

    def test_deepest_valley(self):
        valleys = [
            Valley(center=(0, 0), peak=10.0, radius=1.0),
            Valley(center=(1, 1), peak=90.0, radius=1.0),
        ]
        field = SurfaceDemand({0: (0.0, 0.0)}, valleys)
        assert field.deepest_valley().peak == 90.0
        assert SurfaceDemand({0: (0.0, 0.0)}, []).deepest_valley() is None

    def test_random_valleys_within_plane(self):
        valleys = random_valleys(5, plane_size=100.0, seed=3)
        assert len(valleys) == 5
        for v in valleys:
            assert 0 <= v.center[0] <= 100
            assert 0 <= v.center[1] <= 100


class TestDynamicModels:
    def test_scheduled_demand_steps(self):
        model = ScheduledDemand(
            initial={0: 2.0}, changes={0: [(2.0, 0.0), (5.0, 7.0)]}
        )
        assert model.demand(0, 0.0) == 2.0
        assert model.demand(0, 1.99) == 2.0
        assert model.demand(0, 2.0) == 0.0
        assert model.demand(0, 4.9) == 0.0
        assert model.demand(0, 5.0) == 7.0

    def test_scheduled_unknown_node_is_zero(self):
        assert ScheduledDemand(initial={}).demand(9, 0.0) == 0.0

    def test_change_times(self):
        model = ScheduledDemand(
            initial={0: 1.0, 1: 1.0},
            changes={0: [(2.0, 0.0)], 1: [(2.0, 5.0), (4.0, 1.0)]},
        )
        assert model.change_times() == [2.0, 4.0]

    def test_paper_fig4_scenario(self):
        model = paper_fig4_demand()
        a, c = FIG4_REPLICAS["A"], FIG4_REPLICAS["C"]
        d = FIG4_REPLICAS["D"]
        assert model.demand(a, 1.0) == 2.0
        assert model.demand(c, 1.0) == 0.0
        assert model.demand(d, 1.0) == 13.0
        # After the shift at t=2 (A' and C' in the figure):
        assert model.demand(a, 2.5) == 0.0
        assert model.demand(c, 2.5) == 9.0

    def test_flash_crowd_window(self):
        inner = ConstantDemand(2.0)
        model = FlashCrowdDemand(inner, hot_nodes=[1], start=5.0, end=10.0, factor=10.0)
        assert model.demand(1, 4.9) == 2.0
        assert model.demand(1, 5.0) == 20.0
        assert model.demand(1, 9.9) == 20.0
        assert model.demand(1, 10.0) == 2.0
        assert model.demand(2, 7.0) == 2.0  # cold node unaffected

    def test_flash_crowd_invalid_window(self):
        with pytest.raises(DemandError):
            FlashCrowdDemand(ConstantDemand(1.0), [0], start=5.0, end=5.0)

    def test_random_walk_bounds_and_determinism(self):
        model = RandomWalkDemand({0: 50.0}, step=10.0, low=0.0, high=100.0, seed=1)
        values = [model.demand(0, float(t)) for t in range(30)]
        assert all(0.0 <= v <= 100.0 for v in values)
        again = RandomWalkDemand({0: 50.0}, step=10.0, low=0.0, high=100.0, seed=1)
        assert [again.demand(0, float(t)) for t in range(30)] == values

    def test_random_walk_constant_within_unit_interval(self):
        model = RandomWalkDemand({0: 50.0}, step=5.0, seed=2)
        assert model.demand(0, 3.1) == model.demand(0, 3.9)

    def test_random_walk_query_order_independent(self):
        a = RandomWalkDemand({0: 50.0}, step=5.0, seed=3)
        at10 = a.demand(0, 10.0)
        b = RandomWalkDemand({0: 50.0}, step=5.0, seed=3)
        b.demand(0, 3.0)  # earlier query first
        assert b.demand(0, 10.0) == at10

    def test_random_walk_negative_time_rejected(self):
        with pytest.raises(DemandError):
            RandomWalkDemand({0: 1.0}).demand(0, -1.0)

    def test_scheduled_duplicate_change_times_last_wins(self):
        # Two changes at t=2.0: the later entry in the input wins.
        # (Previously the pair sort resolved duplicates by *value*,
        # so (2.0, 5.0) would shadow (2.0, 1.0).)
        model = ScheduledDemand(
            initial={0: 3.0}, changes={0: [(2.0, 5.0), (2.0, 1.0)]}
        )
        assert model.demand(0, 1.9) == 3.0
        assert model.demand(0, 2.0) == 1.0
        assert model.demand(0, 9.0) == 1.0

    def test_scheduled_duplicate_times_last_wins_unsorted_input(self):
        # Input order (not time order) decides among duplicates, even
        # when the schedule arrives unsorted.
        model = ScheduledDemand(
            initial={0: 0.0},
            changes={0: [(4.0, 9.0), (2.0, 5.0), (2.0, 1.0)]},
        )
        assert model.demand(0, 3.0) == 1.0
        assert model.demand(0, 4.0) == 9.0
        assert model.schedules[0] == [(2.0, 1.0), (4.0, 9.0)]
        assert model.change_times() == [2.0, 4.0]

    def test_scheduled_change_times_precomputed(self):
        # The bisect key array is built once in __init__, not rebuilt
        # on every demand() query.
        model = ScheduledDemand(
            initial={0: 2.0}, changes={0: [(2.0, 0.0), (5.0, 7.0)]}
        )
        times = model._times[0]
        assert times == [2.0, 5.0]
        model.demand(0, 3.0)
        assert model._times[0] is times

    def test_random_walk_extension_draws_each_increment_once(self, monkeypatch):
        # A sequential scan of k steps must cost exactly k RNG draws.
        # The pre-fix code re-derived the whole path on every
        # extension, so k sequential queries drew k*(k+1)/2 times.
        from repro.demand import dynamic

        draws = {"count": 0}

        class CountingRandom(random.Random):
            def uniform(self, a, b):
                draws["count"] += 1
                return super().uniform(a, b)

        monkeypatch.setattr(dynamic.random, "Random", CountingRandom)
        model = RandomWalkDemand({0: 50.0}, step=5.0, seed=4)
        steps = 100
        for t in range(1, steps + 1):
            model.demand(0, float(t))
        assert draws["count"] == steps
        # Re-querying an already-materialised step draws nothing.
        model.demand(0, 37.0)
        assert draws["count"] == steps

    @settings(max_examples=25, deadline=None)
    @given(perm=st.permutations(list(range(20))))
    def test_random_walk_shuffled_query_order_identical(self, perm):
        initial = {0: 40.0, 1: 60.0}
        reference = RandomWalkDemand(initial, step=7.0, seed=9)
        expected = {
            (n, t): reference.demand(n, float(t))
            for n in (0, 1)
            for t in range(20)
        }
        shuffled = RandomWalkDemand(initial, step=7.0, seed=9)
        for t in perm:
            for n in (1, 0):
                assert shuffled.demand(n, float(t)) == expected[(n, t)]
