"""Tests for system assembly and end-to-end convergence (repro.core.system)."""

from __future__ import annotations

import pytest

from repro.core.system import ReplicationSystem
from repro.core.variants import (
    dynamic_fast_consistency,
    fast_consistency,
    weak_consistency,
)
from repro.demand.static import ConstantDemand, UniformRandomDemand
from repro.errors import ConfigurationError, SimulationError
from repro.topology.brite import internet_like
from repro.topology.graph import Topology
from repro.topology.simple import line, ring


class TestConstruction:
    def test_disconnected_topology_rejected(self):
        topo = Topology()
        topo.add_node(0)
        topo.add_node(1)
        with pytest.raises(ConfigurationError):
            ReplicationSystem(topo, ConstantDemand(1.0), weak_consistency())

    def test_empty_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicationSystem(Topology(), ConstantDemand(1.0), weak_consistency())

    def test_every_node_gets_server_and_agent(self):
        system = ReplicationSystem(
            ring(6), ConstantDemand(1.0), weak_consistency(), seed=1
        )
        assert set(system.servers) == set(range(6))
        assert set(system.nodes) == set(range(6))
        assert all(n.fast is None for n in system.nodes.values())

    def test_fast_variant_builds_fast_agents(self):
        system = ReplicationSystem(
            ring(6), ConstantDemand(1.0), fast_consistency(), seed=1
        )
        assert all(n.fast is not None for n in system.nodes.values())

    def test_advertised_variant_builds_advertisers_and_tables(self):
        system = ReplicationSystem(
            ring(6), ConstantDemand(1.0), dynamic_fast_consistency(), seed=1
        )
        assert all(n.advertiser is not None for n in system.nodes.values())
        # Warm-started tables know immediate neighbours.
        assert system.tables[0].believed(1) == 1.0

    def test_inject_write_unknown_node(self):
        system = ReplicationSystem(
            ring(6), ConstantDemand(1.0), weak_consistency(), seed=1
        )
        with pytest.raises(SimulationError):
            system.inject_write(99)


class TestConvergence:
    @pytest.mark.parametrize("config_factory", [weak_consistency, fast_consistency])
    def test_single_write_reaches_every_replica(self, config_factory):
        system = ReplicationSystem(
            internet_like(30, seed=2),
            UniformRandomDemand(seed=2),
            config_factory(),
            seed=2,
        )
        system.start()
        update = system.inject_write(0)
        done = system.run_until_replicated(update.uid, max_time=60.0)
        assert done is not None
        assert system.all_have(update.uid)
        times = system.apply_times(update.uid)
        assert times[0] == 0.0  # origin applies at write time
        assert max(times.values()) == done

    def test_all_replicas_mutually_consistent_after_convergence(self):
        system = ReplicationSystem(
            ring(8), UniformRandomDemand(seed=3), fast_consistency(), seed=3
        )
        system.start()
        for i in range(3):
            system.inject_write(i, key=f"k{i}", value=i)
        system.run_until(40.0)
        reference = system.servers[0]
        for node, server in system.servers.items():
            assert server.is_consistent_with(reference), f"node {node} diverged"

    def test_run_until_replicated_returns_none_on_timeout(self):
        system = ReplicationSystem(
            line(10), ConstantDemand(1.0), weak_consistency(), seed=4
        )
        system.start()
        update = system.inject_write(0)
        # Far too short for a 10-node line.
        assert system.run_until_replicated(update.uid, max_time=0.5) is None
        assert not system.all_have(update.uid)

    def test_run_until_replicated_already_done(self):
        system = ReplicationSystem(
            line(2), ConstantDemand(1.0), weak_consistency(), seed=4
        )
        system.start()
        update = system.inject_write(0)
        first = system.run_until_replicated(update.uid, max_time=30.0)
        again = system.run_until_replicated(update.uid, max_time=30.0)
        assert first == again

    def test_nodes_with_grows_monotonically(self):
        system = ReplicationSystem(
            ring(6), ConstantDemand(1.0), weak_consistency(), seed=5
        )
        system.start()
        update = system.inject_write(0)
        assert system.nodes_with(update.uid) == {0}
        system.run_until(2.0)
        mid = system.nodes_with(update.uid)
        system.run_until(20.0)
        assert mid <= system.nodes_with(update.uid)


class TestDeterminism:
    def test_identical_seeds_identical_results(self):
        def run():
            system = ReplicationSystem(
                internet_like(25, seed=7),
                UniformRandomDemand(seed=7),
                fast_consistency(),
                seed=7,
            )
            system.start()
            update = system.inject_write(3)
            system.run_until_replicated(update.uid, max_time=60.0)
            return (
                system.apply_times(update.uid),
                system.network.counters.messages_sent,
            )

        assert run() == run()

    def test_different_seed_changes_timing(self):
        def run(seed):
            system = ReplicationSystem(
                internet_like(25, seed=7),
                UniformRandomDemand(seed=7),
                fast_consistency(),
                seed=seed,
            )
            system.start()
            update = system.inject_write(3)
            system.run_until_replicated(update.uid, max_time=60.0)
            return system.apply_times(update.uid)

        assert run(1) != run(2)


class TestReporting:
    def test_demand_snapshot(self):
        system = ReplicationSystem(
            ring(4), ConstantDemand(2.5), weak_consistency(), seed=1
        )
        assert system.demand_snapshot() == {n: 2.5 for n in range(4)}

    def test_traffic_snapshot_keys(self):
        system = ReplicationSystem(
            ring(4), ConstantDemand(1.0), weak_consistency(), seed=1
        )
        system.start()
        system.run_until(5.0)
        traffic = system.traffic()
        assert traffic["messages_sent"] > 0
        assert "by_kind" in traffic

    def test_update_applied_topic_published(self):
        system = ReplicationSystem(
            line(2), ConstantDemand(1.0), weak_consistency(), seed=1
        )
        events = []
        system.sim.subscribe(
            "update.applied", lambda **kw: events.append(kw["node"])
        )
        system.start()
        update = system.inject_write(0)
        system.run_until_replicated(update.uid, max_time=30.0)
        assert sorted(set(events)) == [0, 1]
