"""Tests for per-node message routing (repro.core.protocol)."""

from __future__ import annotations

import pytest

from repro.core.system import ReplicationSystem
from repro.core.variants import (
    dynamic_fast_consistency,
    fast_consistency,
    weak_consistency,
)
from repro.demand.advertisement import DemandAdvert
from repro.demand.static import ConstantDemand, ExplicitDemand
from repro.errors import ReplicationError
from repro.replica.messages import FastUpdateOffer, SessionRequest
from repro.topology.simple import line


def build(config, demand=None, n=2, seed=1):
    return ReplicationSystem(
        line(n),
        demand if demand is not None else ConstantDemand(1.0),
        config,
        seed=seed,
    )


class TestRouting:
    def test_session_messages_reach_anti_entropy_agent(self):
        system = build(weak_consistency())
        node = system.nodes[1]
        node.on_message(0, SessionRequest(session_id=42, initiator=0))
        # The responder created a session and answered with its summary.
        assert node.anti_entropy.active_sessions == 1
        assert system.network.counters.by_kind.get("summary", 0) == 1

    def test_fast_messages_ignored_by_weak_node(self):
        # A mixed deployment: a fast peer pushes at a plain-weak node.
        system = build(weak_consistency())
        node = system.nodes[1]
        node.on_message(0, FastUpdateOffer(sender=0, entries=()))
        ignored = system.sim.trace.select("node.ignored-fast")
        assert len(ignored) == 1
        assert ignored[0].get("node") == 1

    def test_fast_messages_reach_fast_agent(self):
        system = build(fast_consistency(), ExplicitDemand({0: 1.0, 1: 2.0}))
        node = system.nodes[1]
        node.on_message(0, FastUpdateOffer(sender=0, entries=()))
        assert node.fast.stats.offers_received == 1

    def test_adverts_reach_advertiser(self):
        system = build(dynamic_fast_consistency())
        node = system.nodes[1]
        node.on_message(0, DemandAdvert(sender=0, value=7.0))
        assert system.tables[1].believed(0) == 7.0

    def test_adverts_dropped_without_advertiser(self):
        system = build(weak_consistency())
        # Must not raise: adverts from dynamic peers are simply ignored.
        system.nodes[1].on_message(0, DemandAdvert(sender=0, value=7.0))

    def test_unroutable_message_raises(self):
        system = build(weak_consistency())
        with pytest.raises(ReplicationError):
            system.nodes[1].on_message(0, object())

    def test_double_start_rejected(self):
        system = build(weak_consistency())
        system.start()
        with pytest.raises(ReplicationError):
            system.nodes[0].start()

    def test_bridge_targets_require_fast_agent(self):
        system = build(weak_consistency())
        with pytest.raises(ReplicationError):
            system.nodes[0].add_bridge_targets([1])
