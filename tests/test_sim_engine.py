"""Tests for the discrete-event engine (repro.sim.engine)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import (
    RUN_EXHAUSTED,
    RUN_MAX_EVENTS,
    RUN_STOPPED,
    RUN_UNTIL,
    Simulator,
)


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        assert sim.run() == RUN_EXHAUSTED
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_insertion_order(self, sim):
        fired = []
        for label in "abcd":
            sim.schedule(1.0, fired.append, label)
        sim.run()
        assert fired == list("abcd")

    def test_priority_breaks_same_time_ties(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "late", priority=10)
        sim.schedule(1.0, fired.append, "early", priority=-10)
        sim.run()
        assert fired == ["early", "late"]

    def test_now_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_at_absolute_time(self, sim):
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_scheduling_in_the_past_raises(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_non_callable_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(1.0, "not-callable")

    def test_events_scheduled_during_run_fire(self, sim):
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0

    def test_zero_delay_event_fires_at_same_time(self, sim):
        times = []

        def outer():
            sim.schedule(0.0, lambda: times.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert times == [1.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        assert sim.cancel(handle) is True
        sim.run()
        assert fired == []

    def test_cancel_twice_returns_false(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        assert sim.cancel(handle) is True
        assert sim.cancel(handle) is False

    def test_cancel_after_fire_returns_false(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.cancel(handle) is False

    def test_pending_count_tracks_cancellations(self, sim):
        handles = [sim.schedule(1.0, lambda: None) for _ in range(3)]
        assert sim.pending_count() == 3
        sim.cancel(handles[0])
        assert sim.pending_count() == 2

    def test_cancel_foreign_handle_returns_false(self, sim):
        other = Simulator(seed=99)
        fired = []
        handle = other.schedule(1.0, fired.append, "x")
        assert sim.cancel(handle) is False
        assert sim.pending_count() == 0
        assert other.pending_count() == 1
        other.run()
        assert fired == ["x"]

    def test_handle_holds_no_payload_references(self, sim):
        # Handles carry only scalars and state flags — a retained handle
        # can never keep a fired callback or its arguments alive.
        fired_handle = sim.schedule(1.0, lambda: None)
        cancelled_handle = sim.schedule(2.0, lambda: None)
        sim.cancel(cancelled_handle)
        sim.run()
        assert fired_handle.fired and not fired_handle.cancelled
        assert cancelled_handle.cancelled and not cancelled_handle.fired
        payload_slots = set(type(fired_handle).__slots__)
        assert payload_slots == {"time", "priority", "seq", "sim", "cancelled", "fired"}

    def test_schedule_fast_fires_in_order_without_handle(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "handled")
        assert sim.schedule_fast(0.5, fired.append, "fast") is None
        assert sim.pending_count() == 2
        sim.run()
        assert fired == ["fast", "handled"]
        assert sim.pending_count() == 0

    def test_cancel_churn_keeps_heap_bounded(self, sim):
        # A session-timeout-style schedule/cancel loop must not grow the
        # heap without bound: cancelled events are compacted away once
        # they dominate the heap.
        for i in range(5000):
            handle = sim.schedule(10.0 + i, lambda: None)
            sim.cancel(handle)
            assert len(sim._heap) <= 200, f"heap grew to {len(sim._heap)} at {i}"
        assert sim.pending_count() == 0
        assert sim.run() == "exhausted"

    def test_compaction_preserves_fire_order(self, sim):
        fired = []
        for i in range(100):
            sim.schedule(float(i), fired.append, i)
        # Cancel enough interleaved timers that the dead entries come to
        # dominate the heap and trigger a compaction mid-stream.
        doomed = [
            sim.schedule(float(i % 100) + 0.5, fired.append, -1) for i in range(500)
        ]
        for handle in doomed:
            sim.cancel(handle)
        assert len(sim._heap) < 600  # compaction actually ran
        assert sim.pending_count() == 100
        assert sim.run() == "exhausted"
        assert fired == list(range(100))


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        assert sim.run(until=2.0) == RUN_UNTIL
        assert fired == ["a"]
        assert sim.now == 2.0

    def test_run_until_advances_clock_when_no_events(self, sim):
        assert sim.run(until=7.0) == RUN_EXHAUSTED
        assert sim.now == 7.0

    def test_run_resumes_after_until(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        sim.run()
        assert fired == ["a", "b"]

    def test_max_events_budget(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        assert sim.run(max_events=4) == RUN_MAX_EVENTS
        assert fired == [0, 1, 2, 3]

    def test_stop_from_callback(self, sim):
        fired = []

        def stopper():
            fired.append("stop")
            sim.stop()

        sim.schedule(1.0, stopper)
        sim.schedule(2.0, fired.append, "after")
        assert sim.run() == RUN_STOPPED
        assert fired == ["stop"]
        sim.run()
        assert fired == ["stop", "after"]

    def test_reentrant_run_raises(self, sim):
        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_step_executes_single_event(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        assert sim.step() is True
        assert fired == ["a"]
        assert sim.step() is True
        assert sim.step() is False

    def test_events_executed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim.events_executed == 5


class TestPubSub:
    def test_publish_reaches_subscribers(self, sim):
        got = []
        sim.subscribe("topic", lambda **kw: got.append(kw))
        count = sim.publish("topic", value=1)
        assert count == 1
        assert got == [{"value": 1}]

    def test_publish_without_subscribers_is_noop(self, sim):
        assert sim.publish("nobody", x=1) == 0

    def test_unsubscribe(self, sim):
        got = []
        handler = lambda **kw: got.append(kw)  # noqa: E731
        sim.subscribe("t", handler)
        sim.unsubscribe("t", handler)
        sim.publish("t", a=1)
        assert got == []

    def test_multiple_subscribers_all_fire(self, sim):
        got = []
        sim.subscribe("t", lambda **kw: got.append("a"))
        sim.subscribe("t", lambda **kw: got.append("b"))
        assert sim.publish("t") == 2
        assert got == ["a", "b"]


class TestDeterminism:
    def test_same_seed_same_rng_sequences(self):
        a = Simulator(seed=9).rng.stream("x")
        b = Simulator(seed=9).rng.stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = Simulator(seed=1).rng.stream("x")
        b = Simulator(seed=2).rng.stream("x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]
