"""Tests for the replica server and client workload (repro.replica)."""

from __future__ import annotations

import pytest

from repro.demand.dynamic import ScheduledDemand
from repro.demand.static import ConstantDemand
from repro.errors import ReplicationError
from repro.replica.log import MaxEntries, Update
from repro.replica.server import ReplicaServer
from repro.replica.timestamps import Timestamp
from repro.replica.versions import SummaryVector
from repro.replica.workload import ClientWorkload, start_workloads


def remote_update(origin: int, seq: int, counter: int, key: str = "k") -> Update:
    return Update(
        origin=origin, seq=seq, timestamp=Timestamp(counter, origin), key=key, value=seq
    )


class TestLocalWrites:
    def test_local_write_applies_and_logs(self):
        server = ReplicaServer(0)
        update = server.local_write("x", "hello")
        assert update.origin == 0
        assert update.seq == 1
        assert server.read("x").value == "hello"
        assert server.summary().get(0) == 1
        assert server.local_writes == 1

    def test_sequences_are_dense(self):
        server = ReplicaServer(0)
        seqs = [server.local_write("x", i).seq for i in range(4)]
        assert seqs == [1, 2, 3, 4]

    def test_payload_bytes_default_and_override(self):
        server = ReplicaServer(0, default_payload_bytes=64)
        assert server.local_write("x", 1).payload_bytes == 64
        assert server.local_write("x", 2, payload_bytes=8).payload_bytes == 8

    def test_negative_node_rejected(self):
        with pytest.raises(ReplicationError):
            ReplicaServer(-1)


class TestIntegration:
    def test_integrate_returns_new_only(self):
        server = ReplicaServer(0)
        u1 = remote_update(1, 1, counter=1)
        first = server.integrate([u1], "session", sender=1)
        again = server.integrate([u1], "session", sender=1)
        assert first == [u1]
        assert again == []

    def test_integrate_witnesses_timestamps(self):
        server = ReplicaServer(0)
        server.integrate([remote_update(1, 1, counter=10)], "session")
        local = server.local_write("x", "after")
        assert local.timestamp.counter == 11

    def test_listeners_fire_with_source_and_sender(self):
        server = ReplicaServer(0)
        seen = []
        server.on_new_updates(lambda ups, src, snd: seen.append((len(ups), src, snd)))
        server.local_write("x", 1)
        server.integrate([remote_update(1, 1, counter=1)], "fast", sender=7)
        server.integrate([], "session", sender=2)  # empty -> no callback
        assert seen == [(1, "client", None), (1, "fast", 7)]

    def test_missing_for_peer(self):
        server = ReplicaServer(0)
        server.local_write("x", 1)
        server.local_write("x", 2)
        missing = server.missing_for(SummaryVector({0: 1}))
        assert [u.seq for u in missing] == [2]

    def test_has_update(self):
        server = ReplicaServer(0)
        update = server.local_write("x", 1)
        assert server.has_update(update.uid)
        assert not server.has_update((5, 1))

    def test_is_consistent_with(self):
        a, b = ReplicaServer(0), ReplicaServer(1)
        update = a.local_write("x", "v")
        assert not a.is_consistent_with(b)
        b.integrate([update], "session", sender=0)
        assert a.is_consistent_with(b)

    def test_truncation_policy_wired(self):
        server = ReplicaServer(0, truncation=MaxEntries(limit=2))
        for i in range(5):
            server.local_write("x", i)
        assert server.log.purge() == 3


class TestClientWorkload:
    def test_poisson_request_counts_scale_with_demand(self, sim):
        server = ReplicaServer(0)
        workload = ClientWorkload(
            sim, server, ConstantDemand(20.0), max_rate=20.0, write_fraction=0.0
        )
        workload.start()
        sim.run(until=50.0)
        # ~1000 expected; allow generous tolerance.
        assert 700 < workload.stats.requests < 1300
        assert workload.stats.reads == workload.stats.requests

    def test_thinning_respects_time_varying_demand(self, sim):
        server = ReplicaServer(0)
        model = ScheduledDemand(initial={0: 20.0}, changes={0: [(10.0, 0.0)]})
        workload = ClientWorkload(sim, server, model, max_rate=20.0)
        workload.start()
        sim.run(until=10.0)
        before = workload.stats.requests
        sim.run(until=30.0)
        after = workload.stats.requests - before
        assert before > 100
        assert after == 0  # demand dropped to zero

    def test_writes_fraction(self, sim):
        server = ReplicaServer(0)
        workload = ClientWorkload(
            sim, server, ConstantDemand(20.0), max_rate=20.0, write_fraction=1.0
        )
        workload.start()
        sim.run(until=10.0)
        assert workload.stats.writes == workload.stats.requests > 0
        assert server.local_writes == workload.stats.writes

    def test_freshness_classification(self, sim):
        server = ReplicaServer(0)
        reference = (9, 1)
        workload = ClientWorkload(
            sim,
            server,
            ConstantDemand(20.0),
            max_rate=20.0,
            reference_update=reference,
        )
        workload.start()
        sim.run(until=5.0)
        stale_so_far = workload.stats.stale_reads
        assert stale_so_far == workload.stats.reads > 0
        server.integrate([remote_update(9, 1, counter=1)], "session")
        sim.run(until=10.0)
        assert workload.stats.fresh_reads > 0
        assert workload.stats.stale_reads == stale_so_far

    def test_zero_rate_never_fires(self, sim):
        server = ReplicaServer(0)
        workload = ClientWorkload(sim, server, ConstantDemand(0.0), max_rate=0.0)
        workload.start()
        sim.run(until=10.0)
        assert workload.stats.requests == 0

    def test_stop(self, sim):
        server = ReplicaServer(0)
        workload = ClientWorkload(sim, server, ConstantDemand(10.0), max_rate=10.0)
        workload.start()
        sim.run(until=5.0)
        count = workload.stats.requests
        workload.stop()
        sim.run(until=20.0)
        assert workload.stats.requests == count

    def test_stop_cancels_pending_arrival(self, sim):
        """stop() must cancel the scheduled arrival, not leave a dead
        event to fire into a no-op — on a long-lived runtime those
        accumulate (one per stop()ed workload)."""
        server = ReplicaServer(0)
        workload = ClientWorkload(sim, server, ConstantDemand(10.0), max_rate=10.0)
        assert sim.pending_count() == 0
        workload.start()
        sim.run(until=5.0)
        assert sim.pending_count() == 1  # exactly the next arrival
        workload.stop()
        assert sim.pending_count() == 0
        # The cancelled event is skipped, so nothing fires at all.
        assert sim.run(until=50.0) == "exhausted"
        assert sim.events_executed > 0

    def test_stop_before_any_arrival_and_restartability(self, sim):
        server = ReplicaServer(0)
        workload = ClientWorkload(sim, server, ConstantDemand(5.0), max_rate=5.0)
        workload.start()
        workload.stop()  # cancel the very first arrival
        assert sim.pending_count() == 0
        workload.stop()  # idempotent: no handle left to cancel
        assert sim.pending_count() == 0

    def test_double_start_rejected(self, sim):
        server = ReplicaServer(0)
        workload = ClientWorkload(sim, server, ConstantDemand(1.0), max_rate=1.0)
        workload.start()
        with pytest.raises(ReplicationError):
            workload.start()

    def test_invalid_parameters(self, sim):
        server = ReplicaServer(0)
        with pytest.raises(ReplicationError):
            ClientWorkload(sim, server, ConstantDemand(1.0), max_rate=-1.0)
        with pytest.raises(ReplicationError):
            ClientWorkload(
                sim, server, ConstantDemand(1.0), max_rate=1.0, write_fraction=2.0
            )

    def test_start_workloads_helper(self, sim):
        servers = {i: ReplicaServer(i) for i in range(3)}
        workloads = start_workloads(
            sim, servers, ConstantDemand(10.0), max_rate=10.0
        )
        sim.run(until=5.0)
        assert set(workloads) == {0, 1, 2}
        assert all(w.stats.requests > 0 for w in workloads.values())
