"""Tests for topology generators (repro.topology.simple / .brite)."""

from __future__ import annotations

import random

import pytest

from repro.errors import TopologyError
from repro.topology.brite import (
    PLACEMENT_HEAVY_TAIL,
    BriteConfig,
    barabasi_albert,
    internet_like,
    place_nodes,
    waxman,
)
from repro.topology.simple import (
    balanced_tree,
    complete,
    grid,
    hypercube,
    line,
    ring,
    star,
    torus,
)


class TestSimpleTopologies:
    def test_line_structure(self):
        topo = line(5)
        assert topo.num_nodes == 5
        assert topo.num_edges == 4
        assert topo.degree(0) == 1
        assert topo.degree(2) == 2
        assert topo.is_connected()

    def test_line_single_node(self):
        assert line(1).num_edges == 0

    def test_ring_structure(self):
        topo = ring(6)
        assert topo.num_edges == 6
        assert all(topo.degree(n) == 2 for n in topo.nodes)
        assert topo.is_connected()

    def test_ring_too_small(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_star_structure(self):
        topo = star(6)
        assert topo.degree(0) == 5
        assert all(topo.degree(n) == 1 for n in range(1, 6))

    def test_grid_structure(self):
        topo = grid(3, 4)
        assert topo.num_nodes == 12
        # edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8
        assert topo.num_edges == 17
        assert topo.is_connected()
        # corner, edge, interior degrees
        assert topo.degree(0) == 2
        assert topo.degree(1) == 3
        assert topo.degree(5) == 4

    def test_torus_all_degree_four(self):
        topo = torus(3, 4)
        assert all(topo.degree(n) == 4 for n in topo.nodes)
        assert topo.num_edges == 2 * 12

    def test_torus_minimum_size(self):
        with pytest.raises(TopologyError):
            torus(2, 5)

    def test_complete_edges(self):
        topo = complete(6)
        assert topo.num_edges == 15
        assert all(topo.degree(n) == 5 for n in topo.nodes)

    def test_balanced_tree_counts(self):
        topo = balanced_tree(2, 3)
        assert topo.num_nodes == 1 + 2 + 4 + 8
        assert topo.num_edges == topo.num_nodes - 1
        assert topo.is_connected()
        assert topo.degree(0) == 2

    def test_balanced_tree_height_zero(self):
        assert balanced_tree(3, 0).num_nodes == 1

    def test_hypercube(self):
        topo = hypercube(4)
        assert topo.num_nodes == 16
        assert all(topo.degree(n) == 4 for n in topo.nodes)
        assert topo.is_connected()

    def test_all_simple_topologies_have_positions(self):
        for topo in (line(4), ring(4), star(4), grid(2, 3), complete(4)):
            for node in topo.nodes:
                assert topo.position(node) is not None

    def test_invalid_sizes_rejected(self):
        for factory in (line, star, complete):
            with pytest.raises(TopologyError):
                factory(0)


class TestBriteConfig:
    def test_validation_catches_bad_params(self):
        with pytest.raises(TopologyError):
            BriteConfig(n=1).validate()
        with pytest.raises(TopologyError):
            BriteConfig(n=10, m=0).validate()
        with pytest.raises(TopologyError):
            BriteConfig(n=5, m=5).validate()
        with pytest.raises(TopologyError):
            BriteConfig(placement="bogus").validate()
        with pytest.raises(TopologyError):
            BriteConfig(waxman_alpha=0.0).validate()

    def test_placement_within_plane(self):
        config = BriteConfig(n=100, plane_size=500.0)
        for x, y in place_nodes(config, random.Random(0)):
            assert 0 <= x <= 500
            assert 0 <= y <= 500

    def test_heavy_tail_placement_clusters(self):
        config = BriteConfig(
            n=400, plane_size=100.0, placement=PLACEMENT_HEAVY_TAIL, squares=10
        )
        points = place_nodes(config, random.Random(1))
        # Count points per cell; heavy-tailed placement should make the
        # busiest cell far denser than uniform expectation (~4).
        cells = {}
        for x, y in points:
            key = (int(x // 10), int(y // 10))
            cells[key] = cells.get(key, 0) + 1
        assert max(cells.values()) >= 12


class TestBarabasiAlbert:
    def test_connected_and_correct_edge_count(self):
        topo = barabasi_albert(BriteConfig(n=60, m=2), random.Random(3))
        assert topo.num_nodes == 60
        assert topo.is_connected()
        # seed clique edges + m per additional node
        expected = 3 + 2 * (60 - 3)
        assert topo.num_edges == expected

    def test_determinism(self):
        a = barabasi_albert(BriteConfig(n=40, m=2), random.Random(5))
        b = barabasi_albert(BriteConfig(n=40, m=2), random.Random(5))
        assert sorted(a.edges()) == sorted(b.edges())

    def test_hubs_emerge(self):
        topo = barabasi_albert(BriteConfig(n=200, m=2), random.Random(7))
        degrees = sorted(topo.degrees().values(), reverse=True)
        assert degrees[0] >= 4 * degrees[len(degrees) // 2]

    def test_keyword_overrides(self):
        topo = barabasi_albert(n=30, m=3)
        assert topo.num_nodes == 30

    def test_config_and_overrides_conflict(self):
        with pytest.raises(TopologyError):
            barabasi_albert(BriteConfig(n=30), n=40)

    def test_internet_like_wrapper(self):
        topo = internet_like(25, seed=9)
        assert topo.num_nodes == 25
        assert topo.is_connected()
        again = internet_like(25, seed=9)
        assert sorted(topo.edges()) == sorted(again.edges())


class TestWaxman:
    def test_connected_and_placed(self):
        topo = waxman(BriteConfig(n=50, m=2), random.Random(11))
        assert topo.num_nodes == 50
        assert topo.is_connected()
        for node in topo.nodes:
            assert topo.position(node) is not None

    def test_prefers_close_neighbours(self):
        topo = waxman(BriteConfig(n=150, m=2, waxman_beta=0.08), random.Random(2))
        # Mean edge length should be well below the mean random-pair
        # distance (~521 on a 1000-plane) because Waxman penalises
        # distance exponentially.
        lengths = [w for _, _, w in topo.edges()]
        assert sum(lengths) / len(lengths) < 400.0

    def test_determinism(self):
        a = waxman(BriteConfig(n=30, m=2), random.Random(4))
        b = waxman(BriteConfig(n=30, m=2), random.Random(4))
        assert sorted(a.edges()) == sorted(b.edges())
