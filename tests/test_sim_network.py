"""Tests for the message network (repro.sim.network)."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.errors import SimulationError
from repro.sim.trace import Tracer
from repro.sim.network import (
    BandwidthLatency,
    DistanceLatency,
    FixedLatency,
    JitteredLatency,
    Network,
)


@dataclass(frozen=True)
class Ping:
    payload: str = "x"
    kind = "ping"

    def size_bytes(self) -> int:
        return 10 + len(self.payload)


def make_net(sim, topo, **kwargs) -> Network:
    return Network(sim, topo, latency=kwargs.pop("latency", FixedLatency(0.1)), **kwargs)


class TestDelivery:
    def test_message_delivered_after_latency(self, sim, triangle):
        net = make_net(sim, triangle)
        got = []
        net.attach(1, lambda src, msg: got.append((sim.now, src, msg)))
        assert net.send(0, 1, Ping()) is True
        sim.run()
        assert got == [(0.1, 0, Ping())]

    def test_send_requires_edge(self, sim, line5):
        net = make_net(sim, line5)
        net.attach(4, lambda s, m: None)
        with pytest.raises(SimulationError):
            net.send(0, 4, Ping())  # not adjacent on a line

    def test_send_to_self_rejected(self, sim, triangle):
        net = make_net(sim, triangle)
        with pytest.raises(SimulationError):
            net.send(0, 0, Ping())

    def test_attach_unknown_node_rejected(self, sim, triangle):
        net = make_net(sim, triangle)
        with pytest.raises(SimulationError):
            net.attach(99, lambda s, m: None)

    def test_delivery_without_handler_is_counted_dropped(self, sim, triangle):
        net = make_net(sim, triangle)
        net.send(0, 1, Ping())
        sim.run()
        assert net.counters.messages_dropped == 1
        assert net.counters.messages_delivered == 0

    def test_counters_track_bytes_and_kinds(self, sim, triangle):
        net = make_net(sim, triangle)
        net.attach(1, lambda s, m: None)
        net.send(0, 1, Ping("abc"))
        net.send(0, 1, Ping("d"))
        sim.run()
        assert net.counters.messages_sent == 2
        assert net.counters.bytes_sent == 13 + 11
        assert net.counters.by_kind == {"ping": 2}
        assert net.counters.bytes_by_kind == {"ping": 24}
        snap = net.counters.snapshot()
        assert snap["messages_delivered"] == 2


class TestLatencyModels:
    def test_fixed_latency(self):
        assert FixedLatency(0.5).delay(0, 1, 99.0) == 0.5

    def test_distance_latency(self):
        model = DistanceLatency(scale=0.01, base=0.1)
        assert model.delay(0, 1, 10.0) == pytest.approx(0.2)

    def test_jittered_latency_bounds(self, sim):
        rng = sim.rng.stream("jitter-test")
        model = JitteredLatency(FixedLatency(0.1), jitter=0.05, rng=rng)
        for _ in range(50):
            d = model.delay(0, 1, 1.0)
            assert 0.1 <= d <= 0.15

    def test_distance_latency_uses_edge_weight(self, sim, triangle):
        triangle_weighted = triangle
        net = Network(sim, triangle_weighted, latency=DistanceLatency(1.0, 0.0))
        got = []
        net.attach(1, lambda s, m: got.append(sim.now))
        net.send(0, 1, Ping())
        sim.run()
        assert got == [1.0]  # default edge weight 1.0


class TestLoss:
    def test_zero_loss_delivers_everything(self, sim, triangle):
        net = make_net(sim, triangle, loss=0.0)
        got = []
        net.attach(1, lambda s, m: got.append(m))
        for _ in range(20):
            net.send(0, 1, Ping())
        sim.run()
        assert len(got) == 20

    def test_loss_drops_fraction(self, sim, triangle):
        net = make_net(sim, triangle, loss=0.5)
        got = []
        net.attach(1, lambda s, m: got.append(m))
        for _ in range(300):
            net.send(0, 1, Ping())
        sim.run()
        assert 80 < len(got) < 220  # ~150 expected
        assert net.counters.messages_dropped == 300 - len(got)

    def test_invalid_loss_rejected(self, sim, triangle):
        with pytest.raises(SimulationError):
            Network(sim, triangle, loss=1.0)


class TestFailures:
    def test_down_node_cannot_send_or_receive(self, sim, triangle):
        net = make_net(sim, triangle)
        got = []
        net.attach(1, lambda s, m: got.append(m))
        net.set_node_down(1)
        assert net.send(0, 1, Ping()) is False
        net.set_node_up(1)
        assert net.send(0, 1, Ping()) is True
        sim.run()
        assert len(got) == 1

    def test_crash_in_flight_drops_message(self, sim, triangle):
        net = make_net(sim, triangle)
        got = []
        net.attach(1, lambda s, m: got.append(m))
        net.send(0, 1, Ping())
        net.set_node_down(1)  # crashes before delivery event fires
        sim.run()
        assert got == []
        assert net.counters.messages_dropped == 1

    def test_link_failure_blocks_both_directions(self, sim, triangle):
        net = make_net(sim, triangle)
        net.attach(0, lambda s, m: None)
        net.attach(1, lambda s, m: None)
        net.set_link_down(0, 1)
        assert net.send(0, 1, Ping()) is False
        assert net.send(1, 0, Ping()) is False
        assert net.link_is_up(0, 1) is False
        net.set_link_up(1, 0)  # order-insensitive key
        assert net.send(0, 1, Ping()) is True

    def test_partition_blocks_cross_group_traffic(self, sim, line5):
        net = make_net(sim, line5)
        for n in line5.nodes:
            net.attach(n, lambda s, m: None)
        net.partition([[0, 1], [2, 3, 4]])
        assert net.send(1, 2, Ping()) is False
        assert net.send(0, 1, Ping()) is True
        net.heal_partition()
        assert net.send(1, 2, Ping()) is True


class TestOverlay:
    def test_overlay_link_delivers_with_custom_delay(self, sim, line5):
        net = make_net(sim, line5)
        got = []
        net.attach(4, lambda s, m: got.append(sim.now))
        net.add_overlay_link(0, 4, delay=0.42)
        assert net.send(0, 4, Ping()) is True
        sim.run()
        assert got == [0.42]

    def test_overlay_neighbors_listed(self, sim, line5):
        net = make_net(sim, line5)
        net.add_overlay_link(0, 4, 0.1)
        assert net.overlay_neighbors(0) == (4,)
        assert 4 in net.neighbors(0)
        net.remove_overlay_link(0, 4)
        assert net.overlay_neighbors(0) == ()

    def test_overlay_respects_node_crash(self, sim, line5):
        net = make_net(sim, line5)
        net.attach(4, lambda s, m: None)
        net.add_overlay_link(0, 4, 0.1)
        net.set_node_down(4)
        assert net.send(0, 4, Ping()) is False

    def test_overlay_survives_physical_link_failure(self, sim, line5):
        net = make_net(sim, line5)
        got = []
        net.attach(1, lambda s, m: got.append(m))
        net.add_overlay_link(0, 1, 0.2)
        net.set_link_down(0, 1)  # physical link down, tunnel is routed around
        assert net.send(0, 1, Ping()) is True
        sim.run()
        assert len(got) == 1


class TestBandwidthLatency:
    def test_transmission_delay_scales_with_size(self):
        model = BandwidthLatency(FixedLatency(0.1), bytes_per_time_unit=1000.0)
        assert model.delay(0, 1, 1.0) == 0.1  # size-less fallback
        assert model.delay_with_size(0, 1, 1.0, 500) == pytest.approx(0.6)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(SimulationError):
            BandwidthLatency(FixedLatency(0.1), bytes_per_time_unit=0.0)

    def test_network_uses_message_size(self, sim, triangle):
        net = Network(
            sim,
            triangle,
            latency=BandwidthLatency(FixedLatency(0.1), bytes_per_time_unit=100.0),
        )
        arrivals = []
        net.attach(1, lambda s, m: arrivals.append(sim.now))
        net.send(0, 1, Ping("x" * 10))   # 20 bytes -> 0.1 + 0.2
        sim.run()
        assert arrivals == [pytest.approx(0.3)]

    def test_big_messages_arrive_after_small_ones(self, sim, triangle):
        net = Network(
            sim,
            triangle,
            latency=BandwidthLatency(FixedLatency(0.01), bytes_per_time_unit=100.0),
        )
        got = []
        net.attach(1, lambda s, m: got.append(len(m.payload)))
        net.send(0, 1, Ping("x" * 50))  # slow, sent first
        net.send(0, 1, Ping("y"))       # fast, sent second
        sim.run()
        assert got == [1, 50]


class TestPartitionEdgeCases:
    """Regression lock on partition/link/detach interaction semantics.

    The fault-injection layer (repro.faults) composes these primitives;
    these tests pin the current behaviour so schedule replays stay
    stable across refactors.
    """

    def test_repartition_while_links_down_keeps_link_state(self, sim, line5):
        # A partition and a failed link are independent filters: healing
        # the partition must not resurrect the failed link, and
        # re-partitioning must not reset it either.
        net = make_net(sim, line5)
        for n in line5.nodes:
            net.attach(n, lambda s, m: None)
        net.set_link_down(1, 2)
        net.partition([[0, 1], [2, 3, 4]])
        assert net.send(1, 2, Ping()) is False  # both filters block
        net.partition([[0, 1, 2], [3, 4]])  # re-partition while split
        assert net.send(1, 2, Ping()) is False  # link still down
        assert net.send(2, 3, Ping()) is False  # new boundary blocks
        net.heal_partition()
        assert net.send(1, 2, Ping()) is False  # heal does not fix links
        net.set_link_up(1, 2)
        assert net.send(1, 2, Ping()) is True

    def test_repartition_replaces_previous_assignment(self, sim, line5):
        net = make_net(sim, line5)
        for n in line5.nodes:
            net.attach(n, lambda s, m: None)
        net.partition([[0, 1], [2, 3, 4]])
        net.partition([[0, 1, 2], [3, 4]])  # only the latest split holds
        assert net.send(1, 2, Ping()) is True
        assert net.send(3, 4, Ping()) is True

    def test_detach_of_down_node_then_recovery(self, sim, triangle):
        # Churn leave = down + detach; messages drop as link-down at
        # send time. After recovery + re-attach, delivery resumes.
        net = make_net(sim, triangle)
        got = []
        handler = lambda s, m: got.append(m)
        net.attach(1, handler)
        net.set_node_down(1)
        net.detach(1)
        assert net.handler_for(1) is None
        assert net.send(0, 1, Ping()) is False
        assert net.counters.messages_dropped == 1
        net.set_node_up(1)
        net.attach(1, handler)
        assert net.handler_for(1) is handler
        assert net.send(0, 1, Ping()) is True
        sim.run()
        assert len(got) == 1

    def test_detached_up_node_drops_at_delivery_not_send(self, sim, triangle):
        # Without the crash, a detached node still accepts the message
        # into the channel; it drops at delivery time as "no-handler".
        net = make_net(sim, triangle)
        net.attach(1, lambda s, m: None)
        net.detach(1)
        assert net.send(0, 1, Ping()) is True
        sim.run()
        assert net.counters.messages_delivered == 0
        assert net.counters.messages_dropped == 1

    def test_set_link_up_does_not_cross_partition(self, sim, line5):
        # "Self-healing" a link inside an active partition: the link
        # filter clears but the partition filter still blocks until
        # heal_partition() — partitions are strictly stronger.
        net = make_net(sim, line5)
        for n in line5.nodes:
            net.attach(n, lambda s, m: None)
        net.partition([[0, 1], [2, 3, 4]])
        net.set_link_down(1, 2)
        net.set_link_up(1, 2)
        assert net.link_is_up(1, 2) is True
        assert net.send(1, 2, Ping()) is False
        net.heal_partition()
        assert net.send(1, 2, Ping()) is True

    def test_partition_ignores_unlisted_nodes(self, sim, line5):
        # Nodes absent from every group share the "None" side: they can
        # talk to each other but not to any listed group.
        net = make_net(sim, line5)
        for n in line5.nodes:
            net.attach(n, lambda s, m: None)
        net.partition([[0, 1]])
        assert net.send(0, 1, Ping()) is True
        assert net.send(1, 2, Ping()) is False  # listed <-> unlisted
        assert net.send(2, 3, Ping()) is True  # unlisted <-> unlisted


class TestZeroCostTracing:
    """Disabled/filtered tracing must cost the hot path nothing.

    A ``record()`` call builds a kwargs dict before the category filter
    can reject it, so every hot call site guards with ``wants()`` first.
    The bomb tracer proves ``record`` is never even invoked.
    """

    class BombTracer(Tracer):
        def record(self, time, category, **fields):
            raise AssertionError(
                f"record({category!r}) called despite the category being off"
            )

    def test_network_send_skips_record_when_filtered(self, sim, triangle):
        sim.trace = self.BombTracer()
        sim.trace.enable_only(["something-else"])
        net = make_net(sim, triangle)
        net.attach(1, lambda src, msg: None)
        assert net.send(0, 1, Ping()) is True
        sim.run()
        assert net.counters.messages_delivered == 1

    def test_network_drop_skips_record_when_filtered(self, sim, triangle):
        sim.trace = self.BombTracer()
        sim.trace.enable_only(["something-else"])
        net = make_net(sim, triangle)
        net.set_node_down(1)
        net.attach(0, lambda src, msg: None)
        assert net.send(0, 1, Ping()) is False
        assert net.counters.messages_dropped == 1

    def test_full_protocol_run_never_calls_record_when_filtered(self):
        # End-to-end: sessions, fast updates and deliveries all run with
        # every category filtered out — no call site may reach record().
        from repro.core.system import ReplicationSystem
        from repro.core.variants import fast_consistency
        from repro.demand.static import UniformRandomDemand
        from repro.sim.engine import Simulator
        from repro.topology.simple import ring

        tracer = self.BombTracer()
        tracer.enable_only([])
        sim = Simulator(seed=7, trace=tracer)
        system = ReplicationSystem(
            topology=ring(6),
            demand=UniformRandomDemand(seed=7),
            config=fast_consistency(),
            seed=7,
            sim=sim,
        )
        system.start()
        update = system.inject_write(0)
        assert system.run_until_replicated(update.uid, max_time=60.0) is not None
