"""Wall-clock runtime adapter and the live ReplicaCluster API.

These tests run real asyncio event loops, so protocol time is scaled
down hard (``time_scale`` of a few milliseconds per unit) and all
assertions about ordering aggregate over several writes rather than
trusting a single wall-clock race.
"""

from __future__ import annotations

import asyncio
import statistics

import pytest

from repro.errors import ConfigurationError, ReplicationError, SimulationError
from repro.demand.static import ExplicitDemand
from repro.runtime import Runtime
from repro.runtime.cluster import ReplicaCluster
from repro.runtime.live import AsyncioRuntime, AsyncioTransport
from repro.core.variants import fast_consistency, weak_consistency
from repro.topology.simple import ring, star


class TestAsyncioRuntime:
    def test_is_a_runtime(self):
        assert isinstance(AsyncioRuntime(seed=1), Runtime)

    def test_requires_start(self):
        runtime = AsyncioRuntime(seed=1)
        with pytest.raises(SimulationError):
            _ = runtime.now

    def test_rejects_bad_time_scale(self):
        with pytest.raises(SimulationError):
            AsyncioRuntime(seed=1, time_scale=0.0)

    def test_schedule_fires_in_scaled_time(self):
        async def main():
            runtime = AsyncioRuntime(seed=1, time_scale=0.01)
            runtime.start()
            fired = []
            runtime.schedule(1.0, fired.append, "a")  # 10 ms wall
            runtime.schedule(3.0, fired.append, "b")
            await runtime.sleep(2.0)
            assert fired == ["a"]
            assert 1.0 <= runtime.now < 3.0
            await runtime.sleep(2.0)
            assert fired == ["a", "b"]

        asyncio.run(main())

    def test_cancel_semantics(self):
        async def main():
            runtime = AsyncioRuntime(seed=1, time_scale=0.001)
            runtime.start()
            fired = []
            pending = runtime.schedule(5.0, fired.append, "x")
            done = runtime.schedule(0.0, fired.append, "y")
            assert runtime.cancel(pending) is True
            assert runtime.cancel(pending) is False  # already cancelled
            await runtime.sleep(1.0)
            assert runtime.cancel(done) is False  # already fired
            assert runtime.cancel(object()) is False  # foreign handle
            assert fired == ["y"]

        asyncio.run(main())

    def test_schedule_at_and_pubsub(self):
        async def main():
            runtime = AsyncioRuntime(seed=1, time_scale=0.001)
            runtime.start()
            got = []
            runtime.subscribe("t", lambda **kw: got.append(kw))
            runtime.schedule_at(1.0, runtime.publish, "t")
            await runtime.sleep(2.0)
            assert got == [{}]
            assert runtime.publish("missing") == 0

        asyncio.run(main())


class TestAsyncioTransport:
    def _runtime(self):
        runtime = AsyncioRuntime(seed=1, time_scale=0.001)
        runtime.start()
        return runtime

    def test_delivery_through_queues(self):
        async def main():
            runtime = self._runtime()
            transport = AsyncioTransport(runtime, ring(4))
            runtime.transport = transport
            got = []
            for node in range(4):
                transport.attach(node, lambda src, msg, _n=node: got.append((_n, src, msg)))
            transport.start_pumps()
            assert transport.send(0, 1, "hello") is True
            await runtime.sleep(1.0)
            assert got == [(1, 0, "hello")]
            assert transport.counters.messages_sent == 1
            assert transport.counters.messages_delivered == 1
            await transport.stop_pumps()

        asyncio.run(main())

    def test_no_link_raises(self):
        async def main():
            runtime = self._runtime()
            transport = AsyncioTransport(runtime, ring(5))
            with pytest.raises(SimulationError):
                transport.send(0, 2, "skip")  # not adjacent on the ring
            with pytest.raises(SimulationError):
                transport.send(0, 0, "self")

        asyncio.run(main())

    def test_loss_drops_but_counts(self):
        async def main():
            runtime = self._runtime()
            transport = AsyncioTransport(runtime, ring(4), loss=0.999999)
            got = []
            transport.attach(1, lambda src, msg: got.append(msg))
            transport.start_pumps()
            assert transport.send(0, 1, "doomed") is True  # entered channel
            await runtime.sleep(1.0)
            assert got == []
            assert transport.counters.messages_dropped == 1
            await transport.stop_pumps()

        asyncio.run(main())

    def test_handler_errors_do_not_kill_pump(self):
        async def main():
            runtime = self._runtime()
            transport = AsyncioTransport(runtime, ring(4))
            got = []

            def handler(src, msg):
                if msg == "bad":
                    raise ValueError("boom")
                got.append(msg)

            transport.attach(1, handler)
            transport.start_pumps()
            transport.send(0, 1, "bad")
            transport.send(0, 1, "good")
            await runtime.sleep(1.0)
            assert got == ["good"]
            assert len(transport.handler_errors) == 1
            await transport.stop_pumps()

        asyncio.run(main())


#: Star centre writes; node 1 is the demand hot-spot, leaves are cold.
_STAR_DEMAND = {0: 1.0, 1: 10.0, 2: 0.1, 3: 0.1, 4: 0.1}


class TestReplicaCluster:
    def test_put_reaches_every_replica(self):
        with ReplicaCluster(nodes=8, seed=5, time_scale=0.01) as cluster:
            update = cluster.put("k", "v", node=0)
            assert cluster.wait_replicated(update.uid, timeout=20.0)
            times = cluster.apply_times(update.uid)
            assert set(times) == set(cluster.topology.nodes)
            for node in cluster.topology.nodes:
                assert cluster.get("k", node=node) == "v"
            latency = cluster.replication_latency(update.uid)
            assert latency is not None and latency > 0.0

    def test_fast_ordering_high_demand_first(self):
        """Acceptance: a put() cascades with fast-consistency ordering —
        the high-demand replica applies it ahead of the cold ones."""
        topo = star(5)
        demand = ExplicitDemand(_STAR_DEMAND)
        config = fast_consistency(link_delay=0.005)
        hot_leads = 0
        rounds = 6
        with ReplicaCluster(
            topo, config=config, demand=demand, seed=2, time_scale=0.02
        ) as cluster:
            hot_gaps = []
            cold_gaps = []
            for sequence in range(rounds):
                update = cluster.put("k", f"v{sequence}", node=0)
                assert cluster.wait_replicated(update.uid, timeout=30.0)
                times = cluster.apply_times(update.uid)
                t0 = times[0]
                hot = times[1] - t0
                cold = [times[n] - t0 for n in (2, 3, 4)]
                hot_gaps.append(hot)
                cold_gaps.extend(cold)
                if hot < min(cold):
                    hot_leads += 1
        # The push beats session-paced anti-entropy essentially always;
        # allow one wall-clock fluke in the per-round ordering but
        # require an unambiguous aggregate gap.
        assert hot_leads >= rounds - 1, (hot_gaps, cold_gaps)
        assert statistics.mean(hot_gaps) < statistics.mean(cold_gaps) / 3

    def test_weak_variant_also_converges(self):
        with ReplicaCluster(
            nodes=6, config=weak_consistency(), seed=4, time_scale=0.005
        ) as cluster:
            update = cluster.put("k", "w", node=None, wait=True, timeout=30.0)
            assert cluster.get("k") == "w"
            stats = cluster.stats()
            assert stats["updates_fully_replicated"] == 1
            assert stats["variant"].startswith("random")

    def test_stats_and_errors(self):
        cluster = ReplicaCluster(nodes=4, seed=6, time_scale=0.005)
        with pytest.raises(ReplicationError):
            cluster.put("k", "v")  # not started yet
        cluster.start()
        try:
            with pytest.raises(ReplicationError):
                cluster.start()  # double start
            with pytest.raises(ReplicationError):
                cluster.put("k", "v", node=99)
            update = cluster.put("k", "v", wait=True, timeout=20.0)
            assert cluster.read("k", node=1).value == "v"
            stats = cluster.stats()
            assert stats["nodes"] == 4
            assert stats["puts"] == 1
            assert stats["gets"] == 1
            assert stats["handler_errors"] == 0
            assert stats["traffic"]["messages_sent"] > 0
            assert stats["uptime_units"] > 0
            assert cluster.replication_latency(update.uid) is not None
            assert cluster.replication_latency(("nope", 0)) is None
        finally:
            cluster.close()
        cluster.close()  # idempotent
        with pytest.raises(ReplicationError):
            cluster.get("k")  # closed

    def test_track_limit_bounds_tracking_state(self):
        with ReplicaCluster(
            nodes=4, seed=8, time_scale=0.005, track_limit=2
        ) as cluster:
            uids = [
                cluster.put("k", f"v{i}", node=0, wait=True, timeout=20.0).uid
                for i in range(5)
            ]
            # Oldest fully-replicated records were evicted...
            assert cluster.apply_times(uids[0]) == {}
            assert cluster.replication_latency(uids[0]) is None
            # ...but waiting on an evicted update answers True at once
            # (it did reach every replica) instead of blocking.
            assert cluster.wait_replicated(uids[0], timeout=0.0) is True
            # ...the newest are retained...
            assert set(cluster.apply_times(uids[-1])) == set(cluster.topology.nodes)
            assert cluster.replication_latency(uids[-1]) is not None
            stats = cluster.stats()
            # ...and the cumulative counter is unaffected by eviction.
            assert stats["updates_fully_replicated"] == 5
            assert stats["updates_tracked"] <= 2

    def test_track_limit_validated(self):
        with pytest.raises(ConfigurationError):
            ReplicaCluster(nodes=3, track_limit=0)

    def test_rejects_disconnected_topology(self):
        from repro.topology.graph import Topology

        topo = Topology()
        topo.add_node(0)
        topo.add_node(1)
        with pytest.raises(ConfigurationError):
            ReplicaCluster(topo)

    def test_boot_failure_surfaces_in_start(self):
        # An advertised-knowledge config needs demand tables, which the
        # cluster bootstraps; break it with an invalid config instead.
        cluster = ReplicaCluster(nodes=3, seed=1, time_scale=0.005)
        cluster.runtime.time_scale = -1.0  # sabotage: schedule() will fail

        def bad_schedule(*args, **kwargs):
            raise RuntimeError("boot boom")

        cluster.runtime.schedule = bad_schedule
        with pytest.raises(RuntimeError, match="boot boom"):
            cluster.start()
