"""Tests for the fault & churn scenario subsystem (repro.faults)."""

from __future__ import annotations

import pickle

import pytest

from repro.core.metrics import post_heal_convergence_time, staleness_under_partition
from repro.core.system import ReplicationSystem
from repro.core.variants import weak_consistency
from repro.demand.static import ConstantDemand
from repro.errors import ExperimentError, FaultError
from repro.experiments.backends import SerialBackend
from repro.experiments.harness import TrialSpec, rep_seeds, run_trial
from repro.experiments.plan import ExperimentPlan
from repro.experiments.scenarios import FAULTS, build_faults, build_system
from repro.faults import (
    PACKET_ACTIONS,
    FaultEvent,
    FaultProcess,
    FaultSchedule,
    ShockableDemand,
    apply_fault,
    corrupt_frame,
    corrupt_storm,
    demand_shock,
    flapping_links,
    heal,
    join,
    latency_shock,
    leave,
    link_down,
    link_up,
    lossy_wan,
    node_down,
    node_up,
    packet_duplicate,
    packet_reorder,
    partition,
    poisson_churn,
    prepare_demand,
    rolling_restart,
    split_brain,
)
from repro.runtime.base import FaultInjector
from repro.topology.simple import line, ring


def weak_system(topo, seed=1) -> ReplicationSystem:
    return ReplicationSystem(topo, ConstantDemand(5.0), weak_consistency(), seed=seed)


# ---------------------------------------------------------------------------
# Schedule data model
# ---------------------------------------------------------------------------


class TestFaultSchedule:
    def test_events_sorted_by_time(self):
        sched = FaultSchedule(events=(node_up(5.0, 1), node_down(2.0, 1)))
        assert [e.time for e in sched.events] == [2.0, 5.0]

    def test_equality_and_pickle_roundtrip(self):
        sched = FaultSchedule(
            events=(partition(1.0, [[0, 1], [2]]), heal(4.0)), name="x"
        )
        clone = pickle.loads(pickle.dumps(sched))
        assert clone == sched
        assert clone.events[0].args == (((0, 1), (2,)),)

    def test_merge_preserves_all_events(self):
        a = FaultSchedule(events=(node_down(1.0, 0), node_up(2.0, 0)), name="a")
        b = FaultSchedule(events=(link_down(1.5, 0, 1), link_up(3.0, 0, 1)), name="b")
        merged = a + b
        assert len(merged) == 4
        assert merged.name == "a+b"
        assert [e.time for e in merged.events] == [1.0, 1.5, 2.0, 3.0]

    def test_validate_rejects_bad_events(self):
        with pytest.raises(FaultError):
            FaultSchedule(events=(FaultEvent(-1.0, "node_down", (0,)),)).validate()
        with pytest.raises(FaultError):
            FaultSchedule(events=(FaultEvent(0.0, "meteor", ()),)).validate()
        with pytest.raises(FaultError):
            FaultSchedule(events=(FaultEvent(0.0, "node_down", ()),)).validate()
        with pytest.raises(FaultError):
            FaultSchedule(events=(FaultEvent(0.0, "partition", (((),),)),)).validate()
        with pytest.raises(FaultError):
            FaultSchedule(events=(FaultEvent(0.0, "demand_shock", ((1,), -2.0)),)).validate()

    def test_partition_windows_and_last_heal(self):
        sched = FaultSchedule(
            events=(
                partition(2.0, [[0], [1]]),
                heal(5.0),
                partition(7.0, [[0], [1]]),
                partition(8.0, [[0, 1], [2]]),  # re-split closes the window
                heal(11.0),
            )
        )
        assert sched.partition_windows() == [(2.0, 5.0), (7.0, 8.0), (8.0, 11.0)]
        assert sched.last_heal_time() == 11.0

    def test_unhealed_partition_window_is_open(self):
        sched = FaultSchedule(events=(partition(2.0, [[0], [1]]),))
        assert sched.partition_windows() == [(2.0, None)]
        assert sched.last_heal_time() is None
        assert not sched.always_recovers()

    def test_down_intervals_pair_crash_with_recovery(self):
        sched = FaultSchedule(
            events=(node_down(1.0, 3), leave(2.0, 4), node_up(5.0, 3), join(6.0, 4))
        )
        assert sched.down_intervals() == {3: [(1.0, 5.0)], 4: [(2.0, 6.0)]}
        assert sched.affected_nodes() == (3, 4)
        assert sched.always_recovers()

    def test_open_down_interval_blocks_recovery_claim(self):
        sched = FaultSchedule(events=(node_down(1.0, 3),))
        assert sched.down_intervals() == {3: [(1.0, None)]}
        assert not sched.always_recovers()

    def test_last_shock_time(self):
        sched = FaultSchedule(
            events=(demand_shock(2.0, [0], 5.0), demand_shock(6.0, [1], 2.0))
        )
        assert sched.last_shock_time() == 6.0
        assert FaultSchedule(events=(heal(3.0),)).last_shock_time() is None

    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule()
        assert FaultSchedule().duration == 0.0
        assert FaultSchedule(events=(heal(3.0),)).duration == 3.0


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------


class TestGenerators:
    def test_generators_are_pure_functions_of_seed(self):
        topo = ring(10)
        for factory in (poisson_churn, flapping_links, split_brain, rolling_restart):
            assert factory(topo, 7) == factory(topo, 7), factory.__name__
            assert factory(topo, 7).validate()

    def test_generators_always_recover(self):
        topo = ring(12)
        for seed in range(5):
            for name, factory in sorted(FAULTS.items()):
                assert factory(topo, seed).always_recovers(), (name, seed)

    def test_poisson_churn_uses_leave_join_pairs(self):
        sched = poisson_churn(ring(10), seed=3, rate=0.5, horizon=20.0)
        actions = {e.action for e in sched.events}
        assert actions <= {"leave", "join"}
        assert sched.always_recovers()

    def test_poisson_churn_bounds_concurrent_downs(self):
        sched = poisson_churn(
            ring(9), seed=1, rate=5.0, mean_downtime=50.0, horizon=10.0,
            max_concurrent_fraction=0.34,
        )
        # Sweep the schedule counting simultaneously-open intervals.
        intervals = [iv for ivs in sched.down_intervals().values() for iv in ivs]
        times = sorted({t for iv in intervals for t in iv if t is not None})
        for t in times:
            down = sum(1 for start, end in intervals if start <= t < (end or 1e18))
            assert down <= 3

    def test_split_brain_covers_all_nodes_in_two_groups(self):
        topo = line(11)
        sched = split_brain(topo, seed=2)
        groups = sched.events[0].args[0]
        assert len(groups) == 2
        assert sorted(n for g in groups for n in g) == sorted(topo.nodes)
        assert sched.last_heal_time() == 16.0

    @pytest.mark.parametrize("seed", range(10))
    def test_split_brain_sides_are_both_connected(self, seed):
        # A spanning-tree edge cut: each side must stay internally
        # connected (anti-entropy keeps converging within it), on both
        # the pathological line and a richer ring.
        for topo in (line(10), ring(9)):
            groups = split_brain(topo, seed=seed).events[0].args[0]
            for group in groups:
                assert topo.subgraph(group).is_connected(), (seed, group)

    def test_flapping_links_only_touches_real_edges(self):
        topo = ring(8)
        sched = flapping_links(topo, seed=4)
        for event in sched.events:
            a, b = event.args
            assert topo.has_edge(a, b)

    def test_rolling_restart_restarts_each_node_once(self):
        topo = ring(6)
        sched = rolling_restart(topo, seed=9)
        intervals = sched.down_intervals()
        assert sorted(intervals) == sorted(topo.nodes)
        assert all(len(ivs) == 1 for ivs in intervals.values())

    def test_split_brain_rejects_disconnected_topology(self):
        from repro.topology.graph import Topology

        topo = Topology("disconnected")
        for n in range(4):
            topo.add_node(n)
        topo.add_edge(0, 1)
        topo.add_edge(1, 2)  # node 3 is isolated
        for seed in range(4):  # whichever node the seed picks as root
            with pytest.raises(FaultError, match="connected"):
                split_brain(topo, seed=seed)

    def test_generator_parameter_validation(self):
        topo = ring(6)
        with pytest.raises(FaultError):
            poisson_churn(topo, 1, rate=-1.0)
        with pytest.raises(FaultError):
            flapping_links(topo, 1, fraction=0.0)
        with pytest.raises(FaultError):
            split_brain(topo, 1, at=5.0, heal_at=5.0)
        with pytest.raises(FaultError):
            split_brain(line(1), 1)
        with pytest.raises(FaultError):
            rolling_restart(topo, 1, downtime=0.0)


# ---------------------------------------------------------------------------
# ShockableDemand + FaultProcess
# ---------------------------------------------------------------------------


class TestShockableDemand:
    def test_shock_is_time_aware(self):
        demand = ShockableDemand(ConstantDemand(10.0))
        demand.apply_shock([1, 2], factor=3.0, at=5.0)
        assert demand.demand(1, 4.9) == 10.0
        assert demand.demand(1, 5.0) == 30.0
        assert demand.demand(3, 9.0) == 10.0  # unshocked node

    def test_shocks_compose_multiplicatively(self):
        demand = ShockableDemand(ConstantDemand(2.0))
        demand.apply_shock([0], factor=3.0, at=1.0)
        demand.apply_shock([0], factor=5.0, at=2.0)
        assert demand.demand(0, 1.5) == 6.0
        assert demand.demand(0, 2.5) == 30.0

    def test_negative_factor_rejected(self):
        with pytest.raises(FaultError):
            ShockableDemand(ConstantDemand(1.0)).apply_shock([0], -1.0, at=0.0)

    def test_prepare_demand_only_wraps_when_needed(self):
        inner = ConstantDemand(1.0)
        shocked = FaultSchedule(events=(demand_shock(1.0, [0], 2.0),))
        plain = FaultSchedule(events=(heal(1.0),))
        assert prepare_demand(inner, shocked) is not inner
        assert prepare_demand(inner, plain) is inner
        assert prepare_demand(inner, None) is inner


class TestFaultProcess:
    def test_blocked_link_stalls_convergence_until_restored(self):
        system = weak_system(line(4))
        process = FaultProcess(
            system, FaultSchedule(events=(link_down(0.5, 1, 2), link_up(30.0, 1, 2)))
        )
        system.start()
        update = system.inject_write(0)
        done = system.run_until_replicated(update.uid, max_time=100.0)
        assert done is not None and done > 30.0
        assert process.stats == {"link_down": 1, "link_up": 1}

    def test_partition_heal_applied(self):
        system = weak_system(line(4))
        process = FaultProcess(
            system,
            FaultSchedule(events=(partition(0.5, [[0, 1], [2, 3]]), heal(20.0))),
        )
        system.start()
        update = system.inject_write(0)
        done = system.run_until_replicated(update.uid, max_time=100.0)
        assert done is not None and done > 20.0
        assert process.stats == {"partition": 1, "heal": 1}

    def test_leave_parks_handler_and_join_restores_it(self):
        system = weak_system(line(4))
        original = system.network.handler_for(2)
        process = FaultProcess(
            system, FaultSchedule(events=(leave(0.5, 2), join(10.0, 2)))
        )
        system.start()
        system.sim.run(until=5.0)
        assert system.network.handler_for(2) is None
        assert not system.network.node_is_up(2)
        system.sim.run(until=12.0)
        assert system.network.handler_for(2) is original
        assert system.network.node_is_up(2)
        assert process.stats == {"leave": 1, "join": 1}

    def test_node_up_after_leave_restores_parked_handler(self):
        # The schedule data model pairs any down action with any up
        # action (down_intervals), so node_up closing a leave interval
        # must re-attach the parked handler too — and the system must
        # actually re-converge afterwards.
        topo = line(4)
        system = weak_system(topo)
        original = system.network.handler_for(2)
        schedule = FaultSchedule(events=(leave(0.5, 2), node_up(10.0, 2)))
        assert schedule.always_recovers()
        FaultProcess(system, schedule)
        system.start()
        update = system.inject_write(0)
        done = system.run_until_replicated(update.uid, max_time=100.0)
        assert system.network.handler_for(2) is original
        assert done is not None and done > 10.0

    def test_demand_shock_without_wrapper_is_skipped(self):
        system = weak_system(line(3))
        process = FaultProcess(
            system, FaultSchedule(events=(demand_shock(1.0, [0], 9.0),))
        )
        system.start()
        system.sim.run(until=2.0)
        assert process.stats == {}
        assert len(process.skipped) == 1

    def test_demand_shock_with_wrapper_applies(self):
        topo = line(3)
        demand = ShockableDemand(ConstantDemand(4.0))
        system = ReplicationSystem(topo, demand, weak_consistency(), seed=1)
        process = FaultProcess(
            system, FaultSchedule(events=(demand_shock(1.0, [2], 9.0),))
        )
        system.start()
        system.sim.run(until=2.0)
        assert process.stats == {"demand_shock": 1}
        assert system.demand.demand(2, system.sim.now) == 36.0

    def test_past_events_rejected(self):
        system = weak_system(line(3))
        system.start()
        system.sim.run(until=5.0)
        with pytest.raises(FaultError):
            FaultProcess(system, FaultSchedule(events=(heal(1.0),)))


# ---------------------------------------------------------------------------
# Partition metrics
# ---------------------------------------------------------------------------


class TestPartitionMetrics:
    def test_post_heal_zero_when_converged_before_heal(self):
        times = {0: 1.0, 1: 2.0}
        assert post_heal_convergence_time(times, [0, 1], heal_time=5.0) == 0.0

    def test_post_heal_measures_tail_after_heal(self):
        times = {0: 1.0, 1: 8.5}
        assert post_heal_convergence_time(times, [0, 1], heal_time=5.0) == 3.5

    def test_post_heal_none_when_node_missing(self):
        assert post_heal_convergence_time({0: 1.0}, [0, 1], heal_time=5.0) is None

    def test_staleness_bounds(self):
        # Node 0 converged pre-split: zero staleness. Node 1 never
        # converged: stale the whole window. Node 2: half the window.
        times = {0: 1.0, 2: 7.0}
        value = staleness_under_partition(times, [0, 1, 2], start=4.0, heal=10.0)
        assert value == pytest.approx((0.0 + 6.0 + 3.0) / 3)

    def test_staleness_rejects_degenerate_inputs(self):
        with pytest.raises(ExperimentError):
            staleness_under_partition({}, [], start=0.0, heal=1.0)
        with pytest.raises(ExperimentError):
            staleness_under_partition({}, [0], start=2.0, heal=2.0)


# ---------------------------------------------------------------------------
# Registry + pipeline integration
# ---------------------------------------------------------------------------


class TestFaultsRegistry:
    def test_build_faults_resolves_names(self):
        sched = build_faults("split_brain", line(8), seed=1)
        assert sched.name == "split_brain"
        assert build_faults("none", line(8), seed=1) == FaultSchedule(name="none")

    def test_build_faults_unknown_name(self):
        with pytest.raises(ExperimentError, match="unknown fault regime"):
            build_faults("gremlins", line(8))

    def test_build_system_installs_fault_process(self):
        system = build_system(topology="line", variant="fast", n=8, seed=2,
                              faults="split_brain")
        assert system.fault_process is not None
        assert system.fault_process.schedule.name == "split_brain"
        system.start()
        update = system.inject_write(list(system.topology.nodes)[0])
        assert system.run_until_replicated(update.uid, max_time=200.0) is not None

    def test_build_system_without_faults_has_none(self):
        system = build_system(topology="line", variant="fast", n=6, seed=2)
        assert system.fault_process is None

    @pytest.mark.parametrize("faults", sorted(FAULTS))
    def test_every_fault_regime_runs_and_converges(self, faults):
        plan = ExperimentPlan(
            name="t", topology="line", demand="uniform", variants=("fast",),
            faults=(faults,), n=8, reps=1, seed=3, max_time=300.0,
        )
        label = "fast" if faults == "none" else f"fast@{faults}"
        trial = plan.run().series[label].trials[0]
        assert trial.time_all is not None


class TestFaultedPlans:
    def small_plan(self, **overrides) -> ExperimentPlan:
        defaults = dict(
            name="t", topology="line", demand="uniform",
            variants=("weak", "fast"), faults=("none", "split_brain"),
            n=10, reps=2, seed=5, max_time=200.0,
        )
        defaults.update(overrides)
        return ExperimentPlan(**defaults)

    def test_expansion_is_fault_major_within_rep(self):
        plan = self.small_plan()
        specs = plan.scenarios()
        assert len(specs) == plan.total_trials() == 8
        first_rep = [(s.faults, s.variant) for s in specs[:4]]
        assert first_rep == [
            ("none", "weak"), ("none", "fast"),
            ("split_brain", "weak"), ("split_brain", "fast"),
        ]

    def test_fault_seed_shared_within_rep(self):
        for spec in self.small_plan().scenarios():
            assert spec.fault_seed == rep_seeds(5, spec.rep).faults

    def test_series_labels(self):
        plan = self.small_plan()
        assert plan.series_labels() == (
            "weak", "fast", "weak@split_brain", "fast@split_brain"
        )
        result = plan.run()
        assert tuple(result.series) == plan.series_labels()
        assert result.params["faults"] == ["none", "split_brain"]

    def test_single_string_faults_coerced(self):
        plan = self.small_plan(faults="split_brain")
        assert plan.faults == ("split_brain",)

    def test_single_string_variants_coerced(self):
        plan = self.small_plan(variants="weak")
        assert plan.variants == ("weak",)
        assert plan.validate()

    def test_validation_rejects_bad_fault_axes(self):
        with pytest.raises(ExperimentError):
            self.small_plan(faults=()).scenarios()
        with pytest.raises(ExperimentError):
            self.small_plan(faults=("none", "none")).scenarios()
        with pytest.raises(ExperimentError):
            self.small_plan(faults=("gremlins",)).scenarios()

    def test_faulted_scenario_spec_pickles(self):
        spec = self.small_plan().scenarios()[-1]
        assert spec.faults == "split_brain"
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_healthy_plan_unchanged_by_faults_axis(self):
        """The default axis must reproduce pre-faults results bit-for-bit."""
        base = ExperimentPlan(
            name="t", topology="ring", demand="uniform",
            variants=("weak",), n=8, reps=2, seed=4,
        )
        explicit = ExperimentPlan(
            name="t", topology="ring", demand="uniform",
            variants=("weak",), faults=("none",), n=8, reps=2, seed=4,
        )
        assert base.run().to_dict() == explicit.run().to_dict()

    def test_post_heal_recorded_only_for_healed_partitions(self):
        result = self.small_plan(reps=2).run(SerialBackend())
        for trial in result.series["weak@split_brain"].trials:
            assert trial.time_post_heal is not None
            assert trial.time_post_heal >= 0.0
        for trial in result.series["weak"].trials:
            assert trial.time_post_heal is None

    def test_run_trial_accepts_explicit_schedule(self):
        topo = line(5)
        spec = TrialSpec(
            topology=topo,
            demand=ConstantDemand(5.0),
            config=weak_consistency(),
            seed=3,
            origin=0,
            max_time=120.0,
            faults=FaultSchedule(
                events=(partition(0.5, [[0, 1], [2, 3, 4]]), heal(30.0))
            ),
        )
        trial, system = run_trial(spec)
        assert system.fault_process is not None
        assert trial.time_all is not None and trial.time_all > 30.0
        assert trial.time_post_heal == pytest.approx(trial.time_all - 30.0)

    def test_shocked_hot_set_metric_recorded(self):
        # A shock that flips the hottest node must be observable: the
        # post-shock ranking differs from the t=0 one, and only shocked
        # series carry the measurement.
        result = self.small_plan(
            variants=("fast",), faults=("none", "demand_shock"), reps=2
        ).run()
        for trial in result.series["fast@demand_shock"].trials:
            assert trial.time_top_shocked is not None
        for trial in result.series["fast"].trials:
            assert trial.time_top_shocked is None

    def test_time_top_shocked_ranks_by_post_shock_demand(self):
        topo = line(5)
        schedule = FaultSchedule(
            # Node 4 becomes by far the hottest at t=1.
            events=(demand_shock(1.0, [4], 1000.0),)
        )
        spec = TrialSpec(
            topology=topo,
            demand=ConstantDemand(5.0),
            config=weak_consistency(),
            seed=3,
            origin=0,
            max_time=120.0,
            top_fraction=0.2,
            faults=schedule,
        )
        trial, _system = run_trial(spec)
        # time_top (pre-shock, all-equal demand -> node 0 by id tie-break)
        # converges instantly at the origin; the shocked top set is node 4
        # at the far end of the line, so it must take strictly longer.
        assert trial.time_top == 0.0
        assert trial.time_top_shocked is not None
        assert trial.time_top_shocked > trial.time_top

    def test_fast_beats_weak_under_split_brain(self):
        """The headline robustness claim, asserted on paired seeds."""
        result = self.small_plan(reps=3).run()
        weak = result.series["weak@split_brain"].mean_post_heal()
        fast = result.series["fast@split_brain"].mean_post_heal()
        assert weak is not None and fast is not None
        assert fast <= weak


# ---------------------------------------------------------------------------
# Packet-level faults
# ---------------------------------------------------------------------------


class TestPacketFaultSchedule:
    def all_four(self) -> FaultSchedule:
        return FaultSchedule(
            events=(
                latency_shock(1.0, 3.0, 5.0),
                packet_reorder(1.5, 0.5, 2.0, 5.0),
                packet_duplicate(2.0, 0.5, 5.0),
                corrupt_frame(2.5, 0.5, 5.0),
            ),
            name="packet-mix",
        ).validate()

    def test_constructors_carry_duration_last(self):
        sched = self.all_four()
        for event in sched.events:
            assert event.action in PACKET_ACTIONS
            assert event.args[-1] == 5.0

    def test_has_packet_faults_and_window_end(self):
        sched = self.all_four()
        assert sched.has_packet_faults()
        assert sched.last_packet_window_end() == pytest.approx(7.5)
        plain = FaultSchedule(events=(node_down(1.0, 0), node_up(2.0, 0)))
        assert not plain.has_packet_faults()
        assert plain.last_packet_window_end() is None

    def test_pickle_round_trip(self):
        sched = self.all_four()
        assert pickle.loads(pickle.dumps(sched)) == sched

    def test_sim_network_drops_and_meters_corrupt_frames(self):
        # probability-1 corruption over the whole run: every channel
        # send is dropped on arrival and metered, and the fault process
        # accounts the window as applied.
        topo = line(3)
        schedule = FaultSchedule(
            events=(corrupt_frame(0.0, 1.0, 500.0),), name="storm"
        )
        system = weak_system(topo, seed=3)
        process = FaultProcess(system, schedule)
        system.start()
        system.inject_write(0)
        system.run_until(50.0)
        assert process.stats == {"corrupt_frame": 1}
        assert not process.skipped
        counters = system.network.counters
        assert counters.corrupt_frames_dropped > 0
        # Nothing survives a probability-1 corrupt window.
        assert counters.messages_delivered == 0

    def test_sim_duplicate_and_reorder_windows_meter(self):
        topo = line(3)
        # The reorder window is finite: with every message delayed by
        # up to 4 extra units the anti-entropy timers can starve, so
        # convergence is only guaranteed once the window expires.
        schedule = FaultSchedule(
            events=(
                packet_duplicate(0.0, 1.0, 500.0),
                packet_reorder(0.0, 1.0, 4.0, 30.0),
            ),
            name="wan",
        )
        system = weak_system(topo, seed=4)
        FaultProcess(system, schedule)
        system.start()
        update = system.inject_write(0)
        assert system.run_until_replicated(update.uid, max_time=500.0) is not None
        counters = system.network.counters
        assert counters.duplicates_suppressed > 0
        assert counters.reorders_applied > 0
        snapshot = counters.snapshot()
        for key in (
            "corrupt_frames_dropped",
            "duplicates_suppressed",
            "reorders_applied",
        ):
            assert key in snapshot

    def test_packet_fault_default_injector_skips(self):
        # An injector that does not override packet_fault() reports the
        # event unappliable, and replays count it as skipped — the
        # sim == live parity accounting for transports without packet
        # support.
        class Bare(FaultInjector):
            def crash_node(self, node):  # pragma: no cover - unused
                pass

            def recover_node(self, node):  # pragma: no cover - unused
                pass

            def set_link(self, a, b, up):  # pragma: no cover - unused
                pass

            def partition(self, groups):  # pragma: no cover - unused
                pass

            def heal(self):  # pragma: no cover - unused
                pass

            def shock_demand(self, nodes, factor):  # pragma: no cover
                return False

        event = corrupt_frame(1.0, 0.5, 2.0)
        assert apply_fault(Bare(), event) is False


class TestPacketGenerators:
    def test_lossy_wan_deterministic_and_valid(self):
        topo = line(6)
        a = lossy_wan(topo, seed=11)
        b = lossy_wan(topo, seed=11)
        c = lossy_wan(topo, seed=12)
        assert a == b
        assert a != c
        assert a.has_packet_faults()
        assert a.validate() is a
        actions = {e.action for e in a.events}
        assert "latency_shock" in actions
        assert actions <= PACKET_ACTIONS

    def test_corrupt_storm_deterministic_and_valid(self):
        topo = line(6)
        a = corrupt_storm(topo, seed=11)
        assert a == corrupt_storm(topo, seed=11)
        assert a != corrupt_storm(topo, seed=13)
        assert a.has_packet_faults()
        assert any(e.action == "corrupt_frame" for e in a.events)
        assert a.validate() is a

    def test_registered_in_fault_regimes(self):
        for name in ("lossy_wan", "corrupt_storm"):
            assert name in FAULTS
            sched = build_faults(name, line(6), seed=2)
            assert sched.name == name
            assert sched.has_packet_faults()
