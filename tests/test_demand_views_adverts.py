"""Tests for demand views and the advertisement protocol."""

from __future__ import annotations

import pytest

from repro.demand.advertisement import (
    DemandAdvert,
    DemandAdvertiser,
    bootstrap_tables,
)
from repro.demand.dynamic import ScheduledDemand
from repro.demand.static import ConstantDemand, ExplicitDemand
from repro.demand.views import (
    DemandTable,
    OracleDemandView,
    SnapshotDemandView,
    TableDemandView,
)
from repro.errors import DemandError
from repro.sim.network import FixedLatency, Network


class TestViews:
    def test_oracle_tracks_current_time(self, sim):
        model = ScheduledDemand(initial={0: 5.0}, changes={0: [(2.0, 9.0)]})
        view = OracleDemandView(model, clock=lambda: sim.now)
        assert view.demand_of(0) == 5.0
        sim.schedule(3.0, lambda: None)
        sim.run()
        assert view.demand_of(0) == 9.0

    def test_snapshot_is_frozen(self):
        model = ScheduledDemand(initial={0: 5.0}, changes={0: [(2.0, 9.0)]})
        view = SnapshotDemandView(model, nodes=[0], at_time=0.0)
        assert view.demand_of(0) == 5.0  # even "after" the change

    def test_snapshot_unknown_node_raises(self):
        view = SnapshotDemandView(ConstantDemand(1.0), nodes=[0])
        with pytest.raises(DemandError):
            view.demand_of(7)

    def test_rank_orders_by_believed_demand(self):
        view = SnapshotDemandView(
            ExplicitDemand({0: 4.0, 1: 6.0, 2: 3.0, 3: 8.0, 4: 7.0}), nodes=range(5)
        )
        assert view.rank([0, 1, 2, 3, 4]) == [3, 4, 1, 0, 2]

    def test_table_view_reads_table(self):
        table = DemandTable(default=0.0)
        table.update(3, 12.0, now=1.0)
        view = TableDemandView(table)
        assert view.demand_of(3) == 12.0
        assert view.demand_of(9) == 0.0  # default for unheard nodes


class TestDemandTable:
    def test_update_and_staleness(self):
        table = DemandTable()
        table.update(1, 5.0, now=2.0)
        assert table.believed(1) == 5.0
        assert table.staleness(1, now=6.0) == 4.0
        assert table.staleness(9, now=6.0) is None
        assert table.known_nodes() == (1,)
        assert len(table) == 1

    def test_update_overwrites(self):
        table = DemandTable()
        table.update(1, 5.0, now=0.0)
        table.update(1, 8.0, now=3.0)
        assert table.believed(1) == 8.0
        assert table.staleness(1, now=3.0) == 0.0


class TestAdvertiser:
    def _setup(self, sim, topo, model, period=1.0, jitter=0.0):
        net = Network(sim, topo, latency=FixedLatency(0.01))
        tables = {}
        advertisers = {}
        for node in topo.nodes:
            tables[node] = DemandTable()
            advertisers[node] = DemandAdvertiser(
                sim, net, node, model, tables[node], period=period, jitter=jitter
            )
            net.attach(
                node,
                lambda src, msg, _n=node: advertisers[_n].on_message(src, msg),
            )
        return net, tables, advertisers

    def test_adverts_fill_neighbor_tables(self, sim, line5):
        model = ExplicitDemand({i: float(i * 10) for i in range(5)})
        net, tables, advertisers = self._setup(sim, line5, model)
        for adv in advertisers.values():
            adv.start()
        sim.run(until=0.5)
        # Node 2 heard from neighbours 1 and 3 but not from 0 or 4.
        assert tables[2].believed(1) == 10.0
        assert tables[2].believed(3) == 30.0
        assert tables[2].staleness(0, sim.now) is None

    def test_adverts_track_demand_changes(self, sim, line5):
        model = ScheduledDemand(initial={1: 2.0}, changes={1: [(2.0, 9.0)]})
        net, tables, advertisers = self._setup(sim, line5, model, period=0.5)
        for adv in advertisers.values():
            adv.start()
        sim.run(until=1.0)
        assert tables[0].believed(1) == 2.0
        sim.run(until=3.0)
        assert tables[0].believed(1) == 9.0

    def test_advert_message_size(self):
        advert = DemandAdvert(sender=0, value=1.0)
        assert advert.size_bytes() == 28

    def test_double_start_rejected(self, sim, line5):
        model = ConstantDemand(1.0)
        _, _, advertisers = self._setup(sim, line5, model)
        advertisers[0].start()
        with pytest.raises(DemandError):
            advertisers[0].start()

    def test_invalid_period_rejected(self, sim, line5):
        net = Network(sim, line5)
        with pytest.raises(DemandError):
            DemandAdvertiser(sim, net, 0, ConstantDemand(1.0), DemandTable(), period=0.0)

    def test_round_counters(self, sim, line5):
        model = ConstantDemand(1.0)
        _, _, advertisers = self._setup(sim, line5, model, period=1.0)
        advertisers[0].start()
        sim.run(until=2.5)
        assert advertisers[0].rounds_sent == 3  # t = 0, 1, 2

    def test_bootstrap_tables_warm_start(self, sim, line5):
        model = ExplicitDemand({i: float(i) for i in range(5)})
        net = Network(sim, line5)
        tables = bootstrap_tables(net, model, at_time=0.0)
        assert tables[2].believed(1) == 1.0
        assert tables[2].believed(3) == 3.0
        # Only neighbours are bootstrapped.
        assert tables[2].staleness(0, 0.0) is None
