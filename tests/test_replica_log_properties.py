"""Property test: the indexed WriteLog agrees with a naive reference model.

The write log was re-indexed for the anti-entropy hot path (per-origin
contiguous arrays + bisect instead of scan-and-sort). This test replays
random interleavings of in-order adds, ahead-of-prefix adds, duplicate
adds and purges against both the real :class:`WriteLog` and a
deliberately naive model with the pre-index semantics, and asserts that
every observable (``has`` / ``updates_since`` / ``ahead_ids`` /
``all_updates`` / ``summary`` / purge results) stays identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replica.log import (
    AckedTruncation,
    MaxEntries,
    Update,
    UpdateId,
    WriteLog,
)
from repro.replica.timestamps import Timestamp
from repro.replica.versions import SummaryVector


def make_update(origin: int, seq: int) -> Update:
    return Update(
        origin=origin,
        seq=seq,
        timestamp=Timestamp(seq * 3 + origin, origin),
        key=f"k{origin}",
        value=(origin, seq),
    )


class NaiveLog:
    """The pre-index semantics: a flat uid map, scan-and-sort queries."""

    def __init__(self) -> None:
        self.entries: Dict[UpdateId, Update] = {}
        self.summary: Dict[int, int] = {}
        self.purged_floor: Dict[int, int] = {}

    def has(self, uid: UpdateId) -> bool:
        origin, seq = uid
        return seq <= self.purged_floor.get(origin, 0) or uid in self.entries

    def add(self, update: Update) -> bool:
        if self.has(update.uid):
            return False
        self.entries[update.uid] = update
        origin = update.origin
        next_seq = self.summary.get(origin, 0) + 1
        while (origin, next_seq) in self.entries:
            self.summary[origin] = next_seq
            next_seq += 1
        return True

    def updates_since(self, peer: SummaryVector) -> List[Update]:
        missing = [
            u for u in self.entries.values() if u.seq > peer.get(u.origin)
        ]
        missing.sort(key=lambda u: (u.origin, u.seq))
        return missing

    def ahead_ids(self) -> List[UpdateId]:
        return sorted(
            uid
            for uid in self.entries
            if uid[1] > self.summary.get(uid[0], 0)
        )

    def all_updates(self) -> List[Update]:
        return sorted(self.entries.values(), key=lambda u: (u.origin, u.seq))

    def purge(self, purgeable: List[UpdateId]) -> int:
        removed = 0
        for uid in purgeable:
            origin, seq = uid
            if uid not in self.entries:
                continue
            if seq > self.summary.get(origin, 0):
                continue
            del self.entries[uid]
            if seq > self.purged_floor.get(origin, 0):
                self.purged_floor[origin] = seq
            removed += 1
        return removed

    def acked_purgeable(self, ack: SummaryVector) -> List[UpdateId]:
        return [
            u.uid for u in self.all_updates() if u.seq <= ack.get(u.origin)
        ]

    def max_entries_purgeable(self, limit: int) -> List[UpdateId]:
        excess = len(self.entries) - limit
        if excess <= 0:
            return []
        ordered = sorted(self.all_updates(), key=lambda u: u.timestamp)
        return [u.uid for u in ordered[:excess]]


summary_entries = st.dictionaries(
    keys=st.integers(min_value=0, max_value=3),
    values=st.integers(min_value=0, max_value=12),
    max_size=4,
)

#: One step of the interleaving: an add (any origin/seq combination, so
#: in-order, ahead-of-prefix and duplicates all occur), an acked purge,
#: or a max-entries purge.
operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("add"),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=1, max_value=12),
        ),
        st.tuples(st.just("purge-acked"), summary_entries),
        st.tuples(st.just("purge-max"), st.integers(min_value=0, max_value=10)),
    ),
    max_size=60,
)


def assert_equivalent(log: WriteLog, model: NaiveLog, peer: SummaryVector) -> None:
    assert log.summary.as_dict() == {
        o: s for o, s in model.summary.items() if s > 0
    }
    assert [u.uid for u in log.all_updates()] == [
        u.uid for u in model.all_updates()
    ]
    assert log.ahead_ids() == model.ahead_ids()
    assert [u.uid for u in log.updates_since(peer)] == [
        u.uid for u in model.updates_since(peer)
    ]
    for origin in range(4):
        for seq in range(1, 14):
            assert log.has((origin, seq)) == model.has((origin, seq)), (
                f"has(({origin}, {seq})) diverged"
            )


class TestIndexedLogAgreesWithNaiveModel:
    @given(operations, summary_entries)
    @settings(max_examples=120, deadline=None)
    def test_random_interleavings(self, ops, peer_entries):
        log = WriteLog()
        model = NaiveLog()
        peer = SummaryVector(peer_entries)
        for op in ops:
            if op[0] == "add":
                update = make_update(op[1], op[2])
                assert log.add(update) == model.add(update)
            elif op[0] == "purge-acked":
                ack = SummaryVector(op[1])
                log.policy = AckedTruncation(ack_vector=ack)
                # The policies must propose identical ids...
                assert log.policy.purgeable(log) == model.acked_purgeable(ack)
                # ...and the purge must remove identical entries.
                assert log.purge() == model.purge(model.acked_purgeable(ack))
            else:
                limit = op[1]
                log.policy = MaxEntries(limit=limit)
                assert log.policy.purgeable(log) == model.max_entries_purgeable(limit)
                assert log.purge() == model.purge(model.max_entries_purgeable(limit))
            assert_equivalent(log, model, peer)

    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_covered_ids_matches_naive_filter(self, ops):
        log = WriteLog()
        model = NaiveLog()
        for op in ops:
            if op[0] == "add":
                update = make_update(op[1], op[2])
                log.add(update)
                model.add(update)
        for floor in (0, 1, 5, 12):
            vector = SummaryVector({o: floor for o in range(4)})
            assert log.covered_ids(vector) == model.acked_purgeable(vector)
