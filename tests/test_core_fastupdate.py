"""Tests for the fast-update push agent (repro.core.fastupdate)."""

from __future__ import annotations

import pytest

from repro.core.system import ReplicationSystem
from repro.core.variants import fast_consistency, weak_consistency
from repro.demand.static import ConstantDemand, ExplicitDemand
from repro.topology.simple import line, star


def slope_line_system(config=None, seed=3):
    """A 5-node line whose demand increases along the line.

    0(1) - 1(2) - 2(4) - 3(8) - 4(16): a write at node 0 should cascade
    downhill all the way to node 4 at link speed.
    """
    topo = line(5)
    demand = ExplicitDemand({0: 1.0, 1: 2.0, 2: 4.0, 3: 8.0, 4: 16.0})
    return ReplicationSystem(
        topology=topo,
        demand=demand,
        config=config if config is not None else fast_consistency(),
        seed=seed,
    )


class TestDownhillCascade:
    def test_write_floods_the_valley_at_link_speed(self):
        system = slope_line_system()
        system.start()
        update = system.inject_write(0)
        # Run a tiny bit of time: far less than one session interval but
        # enough for 4 hops of offer/reply/payload (3 * link_delay each).
        system.run_until(0.5)
        times = system.apply_times(update.uid)
        assert set(times) == {0, 1, 2, 3, 4}
        assert times[4] < 0.5  # reached the valley floor without a session
        # Monotone arrival along the slope.
        assert times[1] < times[2] < times[3] < times[4]

    def test_cascade_stops_at_local_maximum(self):
        # Demand peaks at node 2; a write at 0 pushes 1 -> 2 but not
        # further (3 and 4 are lower demand than 2).
        topo = line(5)
        demand = ExplicitDemand({0: 1.0, 1: 2.0, 2: 9.0, 3: 2.0, 4: 1.0})
        system = ReplicationSystem(
            topology=topo, demand=demand, config=fast_consistency(), seed=4
        )
        system.start()
        update = system.inject_write(0)
        system.run_until(0.5)
        times = system.apply_times(update.uid)
        assert 2 in times
        assert 3 not in times  # beyond the peak: must wait for sessions
        assert 4 not in times

    def test_flat_demand_never_pushes(self):
        # §8: "when all the replicas possess the same demand ... the
        # algorithm behaves like a normal weak consistency algorithm."
        system = ReplicationSystem(
            topology=line(5),
            demand=ConstantDemand(5.0),
            config=fast_consistency(),
            seed=5,
        )
        system.start()
        system.inject_write(0)
        system.run_until(10.0)
        counters = system.network.counters.by_kind
        assert counters.get("fast-offer", 0) == 0

    def test_always_rule_pushes_on_flat_demand(self):
        system = ReplicationSystem(
            topology=line(5),
            demand=ConstantDemand(5.0),
            config=fast_consistency(push_rule="always"),
            seed=5,
        )
        system.start()
        update = system.inject_write(0)
        system.run_until(0.5)
        assert system.network.counters.by_kind.get("fast-offer", 0) > 0
        assert len(system.apply_times(update.uid)) == 5  # flooded everywhere

    def test_push_triggered_by_session_arrivals_too(self):
        # Write at the valley (node 4). Fast push never goes uphill, so
        # node 0 receives only via sessions; when node 1 later gets the
        # update by session, it must re-push downhill if a higher-demand
        # neighbour still lacks it — exercised implicitly by convergence.
        system = slope_line_system(seed=11)
        system.start()
        update = system.inject_write(4)
        done = system.run_until_replicated(update.uid, max_time=60.0)
        assert done is not None


class TestOfferProtocol:
    def test_no_duplicate_offers_to_same_neighbor(self):
        system = slope_line_system()
        system.start()
        system.inject_write(0)
        system.run_until(5.0)
        # Each node offered each update to each downhill neighbour at
        # most once: on a line with a single write, offers <= 4.
        assert system.network.counters.by_kind.get("fast-offer", 0) <= 4

    def test_reply_no_when_already_known(self):
        system = slope_line_system()
        system.start()
        update = system.inject_write(0)
        system.run_until_replicated(update.uid, max_time=60.0)
        system.run_until(system.sim.now + 10.0)
        replies_no = sum(
            n.fast.stats.replies_no for n in system.nodes.values() if n.fast
        )
        replies_yes = sum(
            n.fast.stats.replies_yes for n in system.nodes.values() if n.fast
        )
        # The single write travelled each edge at most once via push.
        assert replies_yes >= 1
        assert replies_no >= 0  # NOs occur when sessions beat the push

    def test_fast_messages_absent_in_weak_variant(self):
        system = ReplicationSystem(
            topology=star(6),
            demand=ExplicitDemand({i: float(i) for i in range(6)}),
            config=weak_consistency(),
            seed=2,
        )
        system.start()
        system.inject_write(0)
        system.run_until(10.0)
        kinds = system.network.counters.by_kind
        assert "fast-offer" not in kinds
        assert "fast-payload" not in kinds

    def test_fanout_two_offers_two_neighbors(self):
        # Star hub (node 0, demand 1) with leaves of demand 5..8: with
        # fanout 2 the hub pushes to the two hottest leaves immediately.
        topo = star(5)
        demand = ExplicitDemand({0: 1.0, 1: 5.0, 2: 6.0, 3: 7.0, 4: 8.0})
        system = ReplicationSystem(
            topology=topo,
            demand=demand,
            config=fast_consistency(fast_fanout=2),
            seed=9,
        )
        system.start()
        update = system.inject_write(0)
        system.run_until(0.2)
        times = system.apply_times(update.uid)
        assert 4 in times and 3 in times  # two hottest leaves
        assert 1 not in times  # fanout capped at 2

    def test_stats_track_pushes(self):
        system = slope_line_system()
        system.start()
        system.inject_write(0)
        system.run_until(1.0)
        pushed = sum(n.fast.stats.updates_pushed for n in system.nodes.values())
        received = sum(n.fast.stats.updates_received for n in system.nodes.values())
        assert pushed == received == 4  # one hop at a time down the line
