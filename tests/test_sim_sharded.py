"""Tests for the sharded simulation kernel (repro.sim.sharded).

The load-bearing property is *result identity*: on deterministic seeds
the sharded kernel must reproduce the single-process kernel's apply
times, traffic totals and event counts exactly — sharding is a
performance transform, not a new semantics. Everything else here
(partitioning, lookahead, rejection of draw-order-dependent features,
worker-pool lifecycle) exists in service of that property.
"""

from __future__ import annotations

import random

import pytest

from repro.core.system import ReplicationSystem
from repro.core.variants import fast_consistency, weak_consistency
from repro.demand.static import UniformRandomDemand
from repro.errors import ExperimentError, SimulationError
from repro.experiments.backends import ShardHostPool
from repro.sim.network import FixedLatency, JitteredLatency
from repro.sim.sharded import (
    ShardedSimulator,
    ShardEngine,
    compute_lookahead,
    partition_topology,
)
from repro.topology.brite import internet_like
from repro.topology.simple import line


def make_topology(n=40, seed=3):
    return internet_like(n, seed=seed)


def run_single(topology, config, horizon, seed=5):
    system = ReplicationSystem(
        topology=topology,
        demand=UniformRandomDemand(seed=3),
        config=config,
        seed=seed,
    )
    system.start()
    update = system.inject_write(0)
    system.run_until(horizon)
    return {
        "apply": system.apply_times(update.uid),
        "traffic": system.traffic(),
        "events": system.sim.events_executed,
    }


def run_sharded(topology, config, horizon, shards, workers=None, seed=5):
    with ShardedSimulator(
        topology,
        UniformRandomDemand(seed=3),
        config,
        seed=seed,
        shards=shards,
        workers=workers,
    ) as sharded:
        sharded.start()
        update = sharded.inject_write(0)
        sharded.run_until(horizon)
        return {
            "apply": sharded.apply_times(update.uid),
            "traffic": sharded.traffic(),
            "events": sharded.events_executed,
        }


# ---------------------------------------------------------------------------
# Partitioning and lookahead
# ---------------------------------------------------------------------------


class TestPartition:
    def test_chunks_cover_all_nodes_once(self):
        topo = make_topology(50)
        parts = partition_topology(topo, 4)
        flat = [node for part in parts for node in part]
        assert sorted(flat) == sorted(topo.nodes)
        assert len(flat) == len(set(flat))

    def test_chunk_sizes_differ_by_at_most_one(self):
        parts = partition_topology(make_topology(50), 3)
        sizes = sorted(len(part) for part in parts)
        assert sizes[-1] - sizes[0] <= 1

    def test_deterministic(self):
        topo = make_topology(50)
        assert partition_topology(topo, 4) == partition_topology(topo, 4)

    def test_line_partition_cuts_one_edge_per_boundary(self):
        # BFS order on a path is the path itself, so k chunks cut
        # exactly k-1 edges — the best possible partition.
        topo = line(12)
        parts = partition_topology(topo, 3)
        owner = {n: i for i, part in enumerate(parts) for n in part}
        cut = sum(1 for a, b, _w in topo.edges() if owner[a] != owner[b])
        assert cut == 2

    def test_rejects_bad_shard_counts(self):
        topo = line(4)
        with pytest.raises(SimulationError):
            partition_topology(topo, 0)
        with pytest.raises(SimulationError):
            partition_topology(topo, 5)


class TestLookahead:
    def test_min_cross_shard_delay(self):
        topo = line(6)
        owner = {n: (0 if n < 3 else 1) for n in topo.nodes}
        lookahead = compute_lookahead(topo, owner, FixedLatency(0.05))
        assert lookahead == pytest.approx(0.05)

    def test_none_without_cross_edges(self):
        topo = line(6)
        owner = {n: 0 for n in topo.nodes}
        assert compute_lookahead(topo, owner, FixedLatency(0.05)) is None

    def test_zero_latency_rejected(self):
        topo = line(4)
        owner = {0: 0, 1: 0, 2: 1, 3: 1}
        with pytest.raises(SimulationError):
            compute_lookahead(topo, owner, FixedLatency(0.0))


# ---------------------------------------------------------------------------
# Result identity with the single kernel
# ---------------------------------------------------------------------------


class TestIdentitySerial:
    @pytest.mark.parametrize("config_factory", [weak_consistency, fast_consistency])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_fixed_horizon_identical(self, config_factory, shards):
        topo = make_topology(40)
        base = run_single(topo, config_factory(), horizon=8.0)
        got = run_sharded(topo, config_factory(), horizon=8.0, shards=shards)
        assert got == base

    def test_converged_at_identical(self):
        topo = make_topology(40)
        config = fast_consistency()
        system = ReplicationSystem(
            topology=topo,
            demand=UniformRandomDemand(seed=3),
            config=config,
            seed=5,
        )
        system.start()
        update = system.inject_write(0)
        single_time = system.run_until_replicated(update.uid, max_time=40.0)
        assert single_time is not None

        with ShardedSimulator(
            topo, UniformRandomDemand(seed=3), config, seed=5, shards=3
        ) as sharded:
            sharded.start()
            update2 = sharded.inject_write(0)
            sharded_time = sharded.run_until_replicated(update2.uid, max_time=40.0)
            assert sharded_time == single_time
            assert sharded.apply_times(update2.uid) == system.apply_times(update.uid)

    def test_two_leg_run_matches_single_leg(self):
        # Driving the same horizon in two run_until calls must land in
        # the same state (exercises the cached next-time invalidation).
        topo = make_topology(40)
        config = fast_consistency()
        base = run_sharded(topo, config, horizon=8.0, shards=2)
        with ShardedSimulator(
            topo, UniformRandomDemand(seed=3), config, seed=5, shards=2
        ) as sharded:
            sharded.start()
            update = sharded.inject_write(0)
            sharded.run_until(3.0)
            sharded.run_until(8.0)
            assert sharded.apply_times(update.uid) == base["apply"]
            assert sharded.events_executed == base["events"]

    def test_watch_misses_nothing_when_already_applied(self):
        # run_until past convergence, then run_until_replicated must
        # report via the watch-backlog path rather than hanging.
        topo = make_topology(30)
        config = fast_consistency()
        with ShardedSimulator(
            topo, UniformRandomDemand(seed=3), config, seed=5, shards=2
        ) as sharded:
            sharded.start()
            update = sharded.inject_write(0)
            sharded.run_until(30.0)
            done = sharded.run_until_replicated(update.uid, max_time=31.0)
            assert done is not None
            assert done <= 30.0


class TestIdentityProcess:
    def test_fixed_horizon_identical(self):
        topo = make_topology(40)
        config = fast_consistency()
        base = run_single(topo, config, horizon=6.0)
        got = run_sharded(topo, config, horizon=6.0, shards=2, workers="process")
        assert got == base

    def test_single_shard_process_works(self):
        # k=1 exercises the mesh-less worker host (no peers at all).
        topo = make_topology(30)
        config = fast_consistency()
        base = run_single(topo, config, horizon=5.0)
        got = run_sharded(topo, config, horizon=5.0, shards=1, workers="process")
        assert got == base

    def test_converged_at_identical(self):
        topo = make_topology(40)
        config = weak_consistency()
        system = ReplicationSystem(
            topology=topo,
            demand=UniformRandomDemand(seed=3),
            config=config,
            seed=5,
        )
        system.start()
        update = system.inject_write(0)
        single_time = system.run_until_replicated(update.uid, max_time=40.0)

        with ShardedSimulator(
            topo,
            UniformRandomDemand(seed=3),
            config,
            seed=5,
            shards=2,
            workers="process",
        ) as sharded:
            sharded.start()
            update2 = sharded.inject_write(0)
            assert (
                sharded.run_until_replicated(update2.uid, max_time=40.0)
                == single_time
            )


# ---------------------------------------------------------------------------
# Guard rails
# ---------------------------------------------------------------------------


class TestRejections:
    def test_loss_rejected(self):
        with pytest.raises(SimulationError, match="loss"):
            ShardedSimulator(
                make_topology(20),
                UniformRandomDemand(seed=3),
                weak_consistency(),
                loss=0.1,
            )

    def test_jittered_latency_rejected(self):
        with pytest.raises(SimulationError, match="latency"):
            ShardedSimulator(
                make_topology(20),
                UniformRandomDemand(seed=3),
                weak_consistency(),
                latency=JitteredLatency(
                    FixedLatency(0.02), jitter=0.01, rng=random.Random(1)
                ),
            )

    def test_unknown_workers_mode_rejected(self):
        with pytest.raises(SimulationError, match="workers"):
            ShardedSimulator(
                make_topology(20),
                UniformRandomDemand(seed=3),
                weak_consistency(),
                workers="threads",
            )

    def test_unknown_node_rejected(self):
        sharded = ShardedSimulator(
            make_topology(20), UniformRandomDemand(seed=3), weak_consistency()
        )
        with pytest.raises(SimulationError):
            sharded.inject_write(999)

    def test_shard_engine_rejects_foreign_local_write(self):
        topo = make_topology(20)
        parts = partition_topology(topo, 2)
        engine = ShardEngine(
            topology=topo,
            demand=UniformRandomDemand(seed=3),
            config=weak_consistency(),
            seed=5,
            local_nodes=parts[0],
        )
        foreign = parts[1][0]
        with pytest.raises(SimulationError):
            engine.local_write(foreign)


# ---------------------------------------------------------------------------
# Accounting
# ---------------------------------------------------------------------------


class TestAccounting:
    def test_snapshot_shape_and_busy_seconds(self):
        topo = make_topology(30)
        with ShardedSimulator(
            topo, UniformRandomDemand(seed=3), fast_consistency(), shards=2
        ) as sharded:
            sharded.start()
            sharded.inject_write(0)
            sharded.run_until(5.0)
            snapshots = sharded.snapshots()
        assert len(snapshots) == 2
        for snap in snapshots:
            assert set(snap) == {
                "apply_times",
                "traffic",
                "events_executed",
                "busy_seconds",
                "now",
            }
            assert snap["now"] == 5.0
            assert snap["busy_seconds"] >= 0.0
        assert sum(s["events_executed"] for s in snapshots) > 0

    def test_partition_splits_event_work(self):
        # Both shards must actually execute events — a partition that
        # funnels everything to one kernel has no parallel headroom.
        topo = make_topology(40)
        with ShardedSimulator(
            topo, UniformRandomDemand(seed=3), weak_consistency(), shards=2
        ) as sharded:
            sharded.start()
            sharded.inject_write(0)
            sharded.run_until(8.0)
            counts = [s["events_executed"] for s in sharded.snapshots()]
        assert min(counts) > 0
        assert max(counts) < sum(counts)


# ---------------------------------------------------------------------------
# Worker pool lifecycle
# ---------------------------------------------------------------------------


class TestShardHostPool:
    def spec(self, topo, part):
        return dict(
            topology=topo,
            demand=UniformRandomDemand(seed=3),
            config=weak_consistency(),
            seed=5,
            local_nodes=part,
        )

    def test_empty_specs_rejected(self):
        with pytest.raises(ExperimentError):
            ShardHostPool([])

    def test_worker_error_propagates_with_traceback(self):
        topo = make_topology(20)
        parts = partition_topology(topo, 2)
        owner = {n: i for i, part in enumerate(parts) for n in part}
        with ShardHostPool(
            [self.spec(topo, part) for part in parts], owner=owner
        ) as pool:
            foreign = parts[1][0]
            with pytest.raises(ExperimentError, match="local_write"):
                pool.call_one(0, "local_write", foreign)

    def test_close_is_idempotent_and_reusable(self):
        topo = make_topology(20)
        parts = partition_topology(topo, 2)
        pool = ShardHostPool([self.spec(topo, part) for part in parts])
        assert pool.call_all("next_time") == [None, None]
        pool.close()
        pool.close()
        # A closed pool lazily respawns, mirroring ProcessPoolBackend.
        assert pool.call_all("next_time") == [None, None]
        pool.close()

    def test_len_and_name(self):
        topo = make_topology(20)
        parts = partition_topology(topo, 2)
        pool = ShardHostPool([self.spec(topo, part) for part in parts])
        assert len(pool) == 2
        assert pool.name == "shard-hosts[2]"
