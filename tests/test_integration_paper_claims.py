"""Integration tests for the paper's headline claims (shape, not numbers).

Each test states the claim it checks, quoted from the paper. Runs use
reduced repetitions with paired seeds; EXPERIMENTS.md records the
calibrated full runs.
"""

from __future__ import annotations

import pytest

from repro.core.metrics import reach_time
from repro.core.system import ReplicationSystem
from repro.core.variants import fast_consistency, weak_consistency
from repro.demand.static import UniformRandomDemand
from repro.experiments.harness import TrialSpec, run_trial
from repro.sim.rng import derive_seed
from repro.topology.analysis import diameter
from repro.topology.brite import internet_like


def paired_means(n, reps, seed, top=False):
    """Mean sessions-to-all (or to top replica) for weak vs fast."""
    weak_samples, fast_samples = [], []
    for rep in range(reps):
        topo = internet_like(n, seed=derive_seed(seed, f"t/{rep}"))
        demand = UniformRandomDemand(seed=derive_seed(seed, f"d/{rep}"))
        for config, bucket in (
            (weak_consistency(), weak_samples),
            (fast_consistency(), fast_samples),
        ):
            trial, _ = run_trial(
                TrialSpec(
                    topology=topo,
                    demand=demand,
                    config=config,
                    seed=derive_seed(seed, f"s/{rep}"),
                    origin=0,
                    max_time=120.0,
                )
            )
            bucket.append(trial.time_top1 if top else trial.time_all)
    return (
        sum(weak_samples) / len(weak_samples),
        sum(fast_samples) / len(fast_samples),
    )


class TestHeadlineClaims:
    def test_fast_consistency_beats_weak_globally(self):
        """Abstract: "our proposition not only substantially improves the
        areas of most demand, but also improves it in general for all
        the replicas."
        """
        weak_mean, fast_mean = paired_means(n=40, reps=12, seed=100)
        assert fast_mean < weak_mean

    def test_high_demand_zone_up_to_6x_faster(self):
        """Abstract: "In zones of higher demand, the consistent state is
        reached up to six times quicker than with a normal weak
        consistency algorithm."
        """
        weak_all, _ = paired_means(n=40, reps=12, seed=101)
        _, fast_top = paired_means(n=40, reps=12, seed=101, top=True)
        assert fast_top < 2.0  # "an average of 1 session"
        assert weak_all / fast_top > 3.0  # conservatively below the 6x claim

    def test_sessions_grow_with_diameter_not_node_count(self):
        """§5: doubling the node count barely moves the session count
        because it tracks the diameter.
        """
        means = {}
        diameters = {}
        for n in (30, 60):
            weak_mean, _ = paired_means(n=n, reps=10, seed=102)
            means[n] = weak_mean
            diameters[n] = sum(
                diameter(internet_like(n, seed=derive_seed(102, f"t/{rep}")))
                for rep in range(10)
            ) / 10
        # Nodes doubled; sessions must grow by far less than 2x...
        assert means[60] / means[30] < 1.5
        # ...and diameter growth is similarly small.
        assert diameters[60] / diameters[30] < 1.5

    def test_flat_demand_degrades_to_weak_consistency(self):
        """§8: "The worst case would be when all the replicas possess
        the same demand; in such a situation the algorithm behaves like
        a normal weak consistency algorithm."
        """
        from repro.demand.static import ConstantDemand

        topo = internet_like(30, seed=9)
        fast = ReplicationSystem(
            topo, ConstantDemand(5.0), fast_consistency(), seed=9
        )
        fast.start()
        update = fast.inject_write(0)
        fast.run_until_replicated(update.uid, max_time=100.0)
        kinds = fast.network.counters.by_kind
        assert kinds.get("fast-offer", 0) == 0  # the push never fires

    def test_fast_update_bytes_are_few(self):
        """§8: the algorithm "requires few additional bytes in the
        exchange of messages between replicas."
        """
        from repro.core.metrics import TrafficMeter

        topo = internet_like(40, seed=11)
        demand = UniformRandomDemand(seed=11)
        totals = {}
        for name, config in (
            ("weak", weak_consistency()),
            ("fast", fast_consistency()),
        ):
            system = ReplicationSystem(topo, demand, config, seed=11)
            system.start()
            system.inject_write(0)
            system.run_until(10.0)
            totals[name] = TrafficMeter(system.network).report()
        assert totals["fast"].bytes_total < totals["weak"].bytes_total * 1.3
        assert totals["fast"].fast_byte_overhead < 0.2

    def test_updates_flow_downhill_toward_demand(self):
        """§2: updates are "attracted or directed to nodes or regions
        with higher demand" — on average, higher-demand replicas see the
        update earlier.
        """
        topo = internet_like(50, seed=12)
        demand = UniformRandomDemand(seed=12)
        system = ReplicationSystem(topo, demand, fast_consistency(), seed=12)
        system.start()
        update = system.inject_write(0)
        system.run_until_replicated(update.uid, max_time=100.0)
        times = system.apply_times(update.uid)
        snap = demand.snapshot(topo.nodes)
        ranked = sorted((n for n in topo.nodes if n != 0), key=lambda n: -snap[n])
        top_quarter = ranked[: len(ranked) // 4]
        bottom_quarter = ranked[-len(ranked) // 4 :]
        mean_top = sum(times[n] for n in top_quarter) / len(top_quarter)
        mean_bottom = sum(times[n] for n in bottom_quarter) / len(bottom_quarter)
        assert mean_top < mean_bottom
