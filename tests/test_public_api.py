"""Public-API audit: ``__all__`` accuracy and import-time hygiene.

Two properties are enforced:

* every package with a declared ``__all__`` (``repro``,
  ``repro.runtime``, ``repro.core``, ``repro.replica``) actually
  resolves each exported name, and nothing obviously public is missing;
* ``import repro`` exposes the documented surface *without* importing
  :mod:`asyncio` — the live runtime is pay-for-what-you-use.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

DOCUMENTED_TOP_LEVEL = [
    "ReplicationSystem",
    "StrongConsistencySystem",
    "ProtocolConfig",
    "fast_consistency",
    "weak_consistency",
    # the runtime port and both execution worlds
    "Clock",
    "Transport",
    "Runtime",
    "SimRuntime",
    "AsyncioRuntime",
    "ReplicaCluster",
    "FaultSchedule",
    "ReproError",
]


def _module(name):
    __import__(name)
    return sys.modules[name]


@pytest.mark.parametrize(
    "module_name",
    ["repro", "repro.runtime", "repro.core", "repro.replica"],
)
def test_all_entries_resolve(module_name):
    module = _module(module_name)
    assert module.__all__, f"{module_name} must declare __all__"
    assert len(module.__all__) == len(set(module.__all__)), "duplicate exports"
    for name in module.__all__:
        assert getattr(module, name, None) is not None, (
            f"{module_name}.__all__ lists {name!r} but it does not resolve"
        )


@pytest.mark.parametrize(
    "module_name",
    ["repro", "repro.runtime", "repro.core", "repro.replica"],
)
def test_public_names_are_exported(module_name):
    """Anything importable without an underscore prefix that is *defined*
    by the package's own __init__ imports should be in __all__."""
    module = _module(module_name)
    exported = set(module.__all__)
    public = {
        name
        for name in dir(module)
        if not name.startswith("_")
        and name != "annotations"  # the __future__ import leaks this name
        and not isinstance(getattr(module, name), type(sys))  # skip submodules
    }
    missing = public - exported
    assert not missing, f"{module_name}: public names missing from __all__: {sorted(missing)}"


def test_documented_surface_present():
    import repro

    for name in DOCUMENTED_TOP_LEVEL:
        assert name in repro.__all__, name
        assert getattr(repro, name) is not None


def test_import_repro_does_not_import_asyncio():
    """The live runtime must stay behind the lazy boundary."""
    code = (
        "import sys\n"
        "import repro\n"
        "assert 'asyncio' not in sys.modules, 'asyncio imported eagerly'\n"
        "assert 'repro.runtime.live' not in sys.modules\n"
        "assert 'repro.runtime.cluster' not in sys.modules\n"
        "assert 'repro.runtime' in sys.modules  # the port itself is eager\n"
        "repro.ReplicaCluster  # touching the name triggers the import\n"
        "assert 'repro.runtime.cluster' in sys.modules\n"
        "assert 'asyncio' in sys.modules\n"
        "print('lazy-ok')\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=False,
    )
    assert proc.returncode == 0, proc.stderr
    assert "lazy-ok" in proc.stdout


def test_dir_includes_lazy_names():
    import repro
    import repro.runtime as runtime

    assert "ReplicaCluster" in dir(repro)
    assert "AsyncioRuntime" in dir(runtime)
    with pytest.raises(AttributeError):
        repro.does_not_exist
    with pytest.raises(AttributeError):
        runtime.does_not_exist
