"""Tests for ASCII visualisation (repro.viz)."""

from __future__ import annotations

import pytest

from repro.demand.field import SurfaceDemand, Valley
from repro.errors import DemandError, ExperimentError
from repro.topology.simple import grid
from repro.viz.ascii import bar_chart, cdf_plot, line_plot
from repro.viz.export import curves_to_csv, rows_to_csv, save_curves_csv
from repro.viz.surface import RAMP, render_surface, render_topology_demand


class TestLinePlot:
    def test_contains_title_axis_and_legend(self):
        text = line_plot(
            {"a": [0.0, 0.5, 1.0]},
            xs=[0.0, 1.0, 2.0],
            title="My Plot",
            x_label="sessions",
        )
        assert "My Plot" in text
        assert "legend: *=a" in text
        assert "sessions" in text

    def test_multiple_series_distinct_glyphs(self):
        text = line_plot(
            {"one": [0, 1, 2], "two": [2, 1, 0]}, xs=[0, 1, 2]
        )
        assert "*" in text and "o" in text
        assert "*=one" in text and "o=two" in text

    def test_length_mismatch_raises(self):
        with pytest.raises(ExperimentError):
            line_plot({"a": [1.0]}, xs=[0.0, 1.0])

    def test_empty_series_raises(self):
        with pytest.raises(ExperimentError):
            line_plot({}, xs=[0, 1])

    def test_too_few_x_values_raises(self):
        with pytest.raises(ExperimentError):
            line_plot({"a": [1.0]}, xs=[0.0])

    def test_cdf_plot_fixed_range(self):
        text = cdf_plot({"c": [0.0, 0.5, 1.0]}, grid=[0, 1, 2])
        assert "1.00" in text  # y-axis top label
        assert "0.00" in text


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = bar_chart({"weak": 6.0, "fast": 3.0}, width=10)
        lines = text.splitlines()
        weak_line = next(line for line in lines if line.startswith("weak"))
        fast_line = next(line for line in lines if line.startswith("fast"))
        assert weak_line.count("#") == 10
        assert fast_line.count("#") == 5

    def test_zero_values_render(self):
        text = bar_chart({"a": 0.0})
        assert "0.000" in text

    def test_empty_raises(self):
        with pytest.raises(ExperimentError):
            bar_chart({})


class TestSurface:
    def field(self):
        return SurfaceDemand(
            positions={0: (0.0, 0.0), 1: (10.0, 10.0)},
            valleys=[Valley(center=(5.0, 5.0), peak=100.0, radius=2.0)],
            base=1.0,
        )

    def test_render_surface_marks_valley_center_dense(self):
        art = render_surface(self.field(), bounds=(0, 0, 10, 10), width=21, height=21)
        lines = art.splitlines()
        # Centre cell should carry the densest glyph.
        assert lines[10][10] == RAMP[-1]
        # Corners are hills (lightest glyph).
        assert lines[0][0] == RAMP[0]

    def test_scale_legend_present(self):
        art = render_surface(self.field(), bounds=(0, 0, 10, 10))
        assert "valleys = high demand" in art

    def test_degenerate_bounds_rejected(self):
        with pytest.raises(DemandError):
            render_surface(self.field(), bounds=(0, 0, 0, 10))

    def test_render_topology_demand(self):
        topo = grid(3, 3)
        demand = {n: float(n) for n in topo.nodes}
        art = render_topology_demand(topo, demand, width=9, height=9)
        assert RAMP[-1] in art  # hottest node uses densest glyph

    def test_render_topology_requires_positions(self):
        from repro.topology.graph import Topology

        topo = Topology()
        topo.add_node(0)
        with pytest.raises(DemandError):
            render_topology_demand(topo, {0: 1.0})


class TestCsvExport:
    def test_curves_to_csv_layout(self):
        text = curves_to_csv({"weak": [0.0, 0.5], "fast": [0.2, 1.0]}, xs=[0, 1])
        lines = text.strip().splitlines()
        assert lines[0] == "sessions,weak,fast"
        assert lines[1] == "0,0.000000,0.200000"
        assert lines[2] == "1,0.500000,1.000000"

    def test_curves_length_mismatch(self):
        with pytest.raises(ExperimentError):
            curves_to_csv({"a": [1.0]}, xs=[0, 1])

    def test_empty_curves_rejected(self):
        with pytest.raises(ExperimentError):
            curves_to_csv({}, xs=[0, 1])

    def test_save_curves_csv(self, tmp_path):
        path = tmp_path / "fig5.csv"
        save_curves_csv({"c": [0.0, 1.0]}, xs=[0, 1], path=path)
        assert path.read_text().startswith("sessions,c")

    def test_rows_to_csv(self):
        text = rows_to_csv(["variant", "mean"], [("weak", 6.15), ("fast", 3.93)])
        assert "variant,mean" in text
        assert "fast,3.93" in text

    def test_rows_width_mismatch(self):
        with pytest.raises(ExperimentError):
            rows_to_csv(["a", "b"], [("only",)])

    def test_figure_curves_roundtrip_through_csv(self):
        import csv as _csv
        import io as _io

        from repro.experiments.cdf import session_grid

        grid = session_grid(2.0, 1.0)
        curves = {"weak": [0.0, 0.5, 1.0]}
        text = curves_to_csv(curves, grid)
        parsed = list(_csv.reader(_io.StringIO(text)))
        assert len(parsed) == 4  # header + 3 points
        assert float(parsed[-1][1]) == 1.0
