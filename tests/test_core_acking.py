"""Tests for ack tables and in-protocol log truncation (Golding acks)."""

from __future__ import annotations

import pytest

from repro.core.system import ReplicationSystem
from repro.core.variants import fast_consistency, weak_consistency
from repro.demand.static import ConstantDemand, UniformRandomDemand
from repro.errors import ReplicationError
from repro.replica.acks import AckTable
from repro.replica.versions import SummaryVector
from repro.topology.simple import line, ring


class TestAckTable:
    def test_owner_must_be_in_population(self):
        with pytest.raises(ReplicationError):
            AckTable(owner=9, population=[0, 1])

    def test_observe_and_completeness(self):
        table = AckTable(owner=0, population=[0, 1])
        table.observe(0, SummaryVector({0: 2}), at=0.0)
        assert not table.is_complete()
        assert table.ack_vector() == SummaryVector()  # incomplete -> nothing
        table.observe(1, SummaryVector({0: 1}), at=1.0)
        assert table.is_complete()
        assert table.ack_vector() == SummaryVector({0: 1})

    def test_observe_outside_population_rejected(self):
        table = AckTable(owner=0, population=[0, 1])
        with pytest.raises(ReplicationError):
            table.observe(7, SummaryVector(), at=0.0)

    def test_dominated_observation_never_regresses(self):
        table = AckTable(owner=0, population=[0, 1])
        table.observe(1, SummaryVector({0: 5}), at=1.0)
        table.observe(1, SummaryVector({0: 3}), at=2.0)  # stale gossip
        assert table.entry(1).summary == SummaryVector({0: 5})

    def test_incomparable_observations_merge(self):
        table = AckTable(owner=0, population=[0, 1])
        table.observe(1, SummaryVector({0: 5}), at=1.0)
        table.observe(1, SummaryVector({1: 4}), at=2.0)
        assert table.entry(1).summary == SummaryVector({0: 5, 1: 4})

    def test_merge_tables(self):
        a = AckTable(owner=0, population=[0, 1, 2])
        b = AckTable(owner=1, population=[0, 1, 2])
        a.observe(0, SummaryVector({0: 3}), at=0.0)
        b.observe(1, SummaryVector({0: 2}), at=0.0)
        b.observe(2, SummaryVector({0: 1}), at=0.0)
        a.merge(b)
        assert a.is_complete()
        assert a.ack_vector() == SummaryVector({0: 1})

    def test_copy_is_independent(self):
        table = AckTable(owner=0, population=[0, 1])
        table.observe(0, SummaryVector({0: 1}), at=0.0)
        dup = table.copy()
        dup.observe(1, SummaryVector({0: 1}), at=1.0)
        assert not table.is_complete()
        assert dup.is_complete()

    def test_size_bytes_scales_with_entries(self):
        table = AckTable(owner=0, population=[0, 1])
        table.observe(0, SummaryVector({0: 1}), at=0.0)
        one = table.size_bytes()
        table.observe(1, SummaryVector({0: 1, 1: 2}), at=0.0)
        assert table.size_bytes() > one


class TestAckedTruncationInProtocol:
    def build(self, n=4, writes=5, seed=6):
        system = ReplicationSystem(
            ring(n) if n >= 3 else line(n),
            ConstantDemand(1.0),
            weak_consistency(log_truncation="acked"),
            seed=seed,
        )
        system.start()
        for i in range(writes):
            system.inject_write(i % n, key=f"k{i}")
        return system

    def test_logs_purge_once_everyone_acked(self):
        system = self.build(n=4, writes=5)
        system.run_until(40.0)
        # All writes delivered everywhere and then acknowledged back:
        # logs should eventually shrink below the write count.
        total_purged = sum(
            node.ack_manager.total_purged for node in system.nodes.values()
        )
        assert total_purged > 0
        for server in system.servers.values():
            assert len(server.log) < 5
            # Content survives purging.
            assert len(server.store) == 5

    def test_purged_writes_never_resurface(self):
        system = self.build(n=3, writes=3)
        system.run_until(60.0)
        # After purging, continued sessions must not re-add entries.
        sizes = {n: len(s.log) for n, s in system.servers.items()}
        system.run_until(80.0)
        assert {n: len(s.log) for n, s in system.servers.items()} == sizes

    def test_crashed_replica_blocks_purging(self):
        system = ReplicationSystem(
            ring(4),
            ConstantDemand(1.0),
            weak_consistency(log_truncation="acked"),
            seed=7,
        )
        system.network.set_node_down(3)
        system.start()
        system.inject_write(0)
        system.run_until(40.0)
        # Node 3 never acked: nothing may be purged anywhere.
        for node in system.nodes.values():
            assert node.ack_manager.total_purged == 0
        assert len(system.servers[0].log) == 1

    def test_ack_tables_add_measurable_bytes(self):
        plain = ReplicationSystem(
            ring(4), ConstantDemand(1.0), weak_consistency(), seed=8
        )
        acked = ReplicationSystem(
            ring(4),
            ConstantDemand(1.0),
            weak_consistency(log_truncation="acked"),
            seed=8,
        )
        for system in (plain, acked):
            system.start()
            system.inject_write(0)
            system.run_until(10.0)
        assert (
            acked.network.counters.bytes_by_kind["summary"]
            > plain.network.counters.bytes_by_kind["summary"]
        )

    def test_acked_mode_still_converges_with_fast_updates(self):
        system = ReplicationSystem(
            ring(6),
            UniformRandomDemand(seed=9),
            fast_consistency(log_truncation="acked"),
            seed=9,
        )
        system.start()
        update = system.inject_write(0)
        assert system.run_until_replicated(update.uid, max_time=60.0) is not None


class TestMaxEntriesInProtocol:
    def test_log_stays_bounded(self):
        system = ReplicationSystem(
            ring(3),
            ConstantDemand(1.0),
            weak_consistency(log_truncation="max-entries", max_log_entries=4),
            seed=10,
        )
        system.start()
        for i in range(12):
            system.inject_write(i % 3, key=f"k{i}")
        system.run_until(60.0)
        for server in system.servers.values():
            assert len(server.log) <= 4

    def test_truncated_history_aborts_session_instead_of_stalling(self):
        # A node that was down while history was purged gets an explicit
        # abort (reason log-truncated), not silent inconsistency.
        system = ReplicationSystem(
            ring(3),
            ConstantDemand(1.0),
            weak_consistency(log_truncation="max-entries", max_log_entries=2),
            seed=11,
        )
        system.network.set_node_down(2)
        system.start()
        for i in range(8):
            system.inject_write(0, key=f"k{i}")
        system.run_until(30.0)
        system.network.set_node_up(2)
        system.run_until(80.0)
        aborts = [
            r
            for r in system.sim.trace.select("session.abort")
            if r.get("reason") == "log-truncated"
        ]
        assert aborts
