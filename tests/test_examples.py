"""Smoke tests: every example script runs to completion.

Each example is executed in-process (import + main()) with stdout
captured, and a scenario-specific marker of success is asserted.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "news_flash_crowd.py",
        "internet_scale.py",
        "content_islands.py",
        "demand_surface.py",
        "replica_lifecycle.py",
        "cdn_hierarchy.py",
    } <= names


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "fast consistency (paper)" in out
    assert "weak consistency (Golding)" in out


def test_news_flash_crowd(capsys):
    out = run_example("news_flash_crowd.py", capsys)
    assert "dynamic algorithm" in out
    assert "sessions sooner on average" in out


def test_internet_scale(capsys):
    out = run_example("internet_scale.py", capsys)
    assert "power laws" in out
    assert "size sweep" in out


def test_content_islands(capsys):
    out = run_example("content_islands.py", capsys)
    assert "detected 2 islands" in out
    assert "+ bridges" in out


def test_demand_surface(capsys):
    out = run_example("demand_surface.py", capsys)
    assert "demand landscape" in out
    assert "consistent" in out


def test_replica_lifecycle(capsys):
    out = run_example("replica_lifecycle.py", capsys)
    assert "entries purged" in out
    assert "chose donor" in out
    assert "replicated to all" in out


def test_cdn_hierarchy(capsys):
    out = run_example("cdn_hierarchy.py", capsys)
    assert "AS 2 (hot)" in out
    assert "weak" in out and "fast" in out
